package approxql

import (
	"bytes"
	"testing"

	"approxql/internal/datagen"
	"approxql/internal/eval"
	"approxql/internal/index"
	"approxql/internal/kbest"
	"approxql/internal/lang"
	"approxql/internal/querygen"
	"approxql/internal/schema"
	"approxql/internal/storage"
)

// TestEndToEndPipeline drives the full production pipeline at moderate
// scale: generate a synthetic collection, serialize and reload it through
// the public API, persist postings and the secondary index into B+tree
// stores, and verify that every access path — in-memory direct, in-memory
// schema-driven, stored postings, stored I_sec — returns identical results
// for generated workloads.
func TestEndToEndPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("integration pipeline")
	}
	cfg := datagen.Config{
		Seed: 77, NumElementNames: 30, VocabularySize: 800,
		TargetElements: 8000, TargetWords: 30000,
		TemplateNodes: 100, MaxDepth: 7, MaxRepeat: 3, ZipfSkew: 1.3,
	}
	tree, err := datagen.GenerateTree(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := ReadDatabase(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Persist postings and I_sec into B+tree stores on disk.
	dir := t.TempDir()
	postDB, err := storage.Open(dir+"/postings.db", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer postDB.Close()
	if err := index.Save(db.Index(), postDB); err != nil {
		t.Fatal(err)
	}
	if err := postDB.Check(); err != nil {
		t.Fatalf("postings store: %v", err)
	}
	stored := index.OpenStored(postDB)

	secDB, err := storage.Open(dir+"/sec.db", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer secDB.Close()
	if err := db.Schema().SaveSec(secDB); err != nil {
		t.Fatal(err)
	}
	if err := secDB.Check(); err != nil {
		t.Fatalf("secondary store: %v", err)
	}
	storedSec := schema.OpenStoredSec(secDB)

	qg, err := querygen.New(db.Tree(), 5)
	if err != nil {
		t.Fatal(err)
	}
	queries := 0
	for _, p := range querygen.PaperPatterns {
		for _, ren := range []int{0, 5} {
			set, err := qg.GenerateSet(p, ren, 3)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range set {
				queries++
				x := lang.Expand(g.Query, g.Model)
				const n = 10

				memDirect, err := db.Search(g.Query.String(), n,
					WithCostModel(g.Model), WithStrategy(Direct))
				if err != nil {
					t.Fatal(err)
				}
				memSchema, err := db.Search(g.Query.String(), n,
					WithCostModel(g.Model), WithStrategy(SchemaDriven))
				if err != nil {
					t.Fatal(err)
				}
				if !equalCosts(memDirect, memSchema) {
					t.Fatalf("query %s: direct %v vs schema %v", g.Query, memDirect, memSchema)
				}

				// Direct evaluation over stored postings.
				viaStored, err := newStoredEval(db, stored, x, n)
				if err != nil {
					t.Fatal(err)
				}
				if !equalCosts(memDirect, viaStored) {
					t.Fatalf("query %s: stored postings diverge", g.Query)
				}

				// Schema-driven evaluation over the stored I_sec.
				viaSec, _, err := kbest.BestNWithSecondary(db.Schema(), storedSec, x, n, kbest.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if !equalCosts(memDirect, viaSec) {
					t.Fatalf("query %s: stored I_sec diverges", g.Query)
				}
			}
		}
	}
	if queries != 18 {
		t.Fatalf("ran %d queries", queries)
	}
}

func newStoredEval(db *Database, src index.Source, x *lang.Expanded, n int) ([]Result, error) {
	return eval.New(db.Tree(), src).BestN(x, n)
}

func equalCosts(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cost != b[i].Cost {
			return false
		}
	}
	return true
}
