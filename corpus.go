package approxql

import (
	"context"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"approxql/internal/backend"
	"approxql/internal/corpus"
	"approxql/internal/index"
	"approxql/internal/storage"
	"approxql/internal/xmltree"
)

// DocID identifies one document of a Corpus in global ingestion order: the
// first document added is 0, the second 1, and so on. DocIDs are stable
// across saving and reopening a corpus bundle.
type DocID = corpus.DocID

// Hit is one ranked corpus answer: the document holding the match plus the
// usual Result (subtree root and embedding cost). Root is relative to the
// document's shard tree; resolve it through Corpus.Doc:
//
//	hits, _ := c.Search("cd[title[concerto]]", 10)
//	for _, h := range hits {
//	    fmt.Println(c.Doc(h.Doc).Name(), h.Cost)
//	    fmt.Println(c.Doc(h.Doc).RenderNode(h.Root))
//	}
//
// Hits are ranked by ascending (Cost, Doc, Root) — a strict total order,
// so a ranking is bit-identical regardless of shard count, evaluation
// strategy, or parallelism.
type Hit struct {
	// Doc is the document containing the match.
	Doc DocID
	Result
}

// DefaultShardDocs is the CorpusBuilder's default shard capacity.
const DefaultShardDocs = 64

// CorpusBuilder ingests XML documents into a new sharded Corpus. Documents
// fill the current shard until it reaches the configured capacity, then a
// fresh shard begins: every shard is a self-contained indexed collection,
// and queries scatter over the shards and gather through one global top-n
// merge.
type CorpusBuilder struct {
	model     *CostModel
	tok       func(string) []string
	shardDocs int

	cur     *xmltree.Builder
	curDocs int
	shards  []*corpus.Shard
	docs    []backend.CorpusDoc
	err     error
}

// NewCorpusBuilder returns a CorpusBuilder. The optional model fixes the
// node-insertion costs baked into the index encoding, as in NewBuilder.
func NewCorpusBuilder(model *CostModel) *CorpusBuilder {
	return &CorpusBuilder{model: model, shardDocs: DefaultShardDocs}
}

// SetShardSize bounds the number of documents per shard (default
// DefaultShardDocs). Call it before adding documents; n < 1 is clamped
// to 1. Smaller shards parallelize and prune better, larger shards
// amortize per-shard schema and index overhead.
func (cb *CorpusBuilder) SetShardSize(n int) {
	if n < 1 {
		n = 1
	}
	cb.shardDocs = n
}

// SetTokenizer replaces the word splitter applied to element text and
// attribute values, as in Builder.SetTokenizer. Call it before adding
// documents.
func (cb *CorpusBuilder) SetTokenizer(tok func(string) []string) { cb.tok = tok }

// AddDocument parses one XML document and adds it to the corpus under the
// given external name (usually the source file path; it may be empty). It
// returns the document's DocID. After an error the builder is poisoned:
// every later call returns the same error.
func (cb *CorpusBuilder) AddDocument(name string, r io.Reader) (DocID, error) {
	if cb.err != nil {
		return 0, cb.err
	}
	if cb.cur == nil {
		cb.cur = xmltree.NewBuilder(cb.model)
		if cb.tok != nil {
			cb.cur.SetTokenizer(cb.tok)
		}
		cb.curDocs = 0
	}
	if err := cb.cur.AddDocument(r); err != nil {
		cb.err = err
		return 0, err
	}
	id := DocID(len(cb.docs))
	cb.docs = append(cb.docs, backend.CorpusDoc{Shard: len(cb.shards), Name: name})
	cb.curDocs++
	if cb.curDocs >= cb.shardDocs {
		if err := cb.flushShard(); err != nil {
			return 0, err
		}
	}
	return id, nil
}

// AddDocumentString is AddDocument over a string.
func (cb *CorpusBuilder) AddDocumentString(name, doc string) (DocID, error) {
	return cb.AddDocument(name, strings.NewReader(doc))
}

// AddDocumentFile parses the XML file at path and adds it under its path
// as the document name.
func (cb *CorpusBuilder) AddDocumentFile(path string) (DocID, error) {
	if cb.err != nil {
		return 0, cb.err
	}
	f, err := os.Open(path)
	if err != nil {
		cb.err = err
		return 0, err
	}
	defer f.Close()
	return cb.AddDocument(path, f)
}

// flushShard freezes the current shard builder into an indexed in-memory
// shard.
func (cb *CorpusBuilder) flushShard() error {
	tree, err := cb.cur.Finish()
	if err != nil {
		cb.err = err
		return err
	}
	cb.shards = append(cb.shards, corpus.NewShard(backend.NewMemory(tree), nil))
	cb.cur = nil
	cb.curDocs = 0
	return nil
}

// Corpus finishes ingestion: it freezes the open shard and assembles the
// corpus. The builder must not be used afterwards.
func (cb *CorpusBuilder) Corpus() (*Corpus, error) {
	if cb.err != nil {
		return nil, cb.err
	}
	if cb.cur != nil {
		if err := cb.flushShard(); err != nil {
			return nil, err
		}
	}
	c, err := corpus.New(cb.shards, cb.docs)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// Corpus is an immutable sharded XML collection supporting approximate
// tree-pattern search over many documents. It generalizes Database: a
// Database is the one-shard special case (Database.Corpus converts), and
// every Corpus query method mirrors the corresponding Database method's
// context and option API, returning Hits (document plus Result) instead
// of bare Results.
//
// A Corpus is safe for concurrent use.
type Corpus struct {
	c *corpus.Corpus
}

// NumDocs returns the number of documents in the corpus.
func (c *Corpus) NumDocs() int { return c.c.NumDocs() }

// NumShards returns the number of shards.
func (c *Corpus) NumShards() int { return c.c.NumShards() }

// Owns reports whether doc lives on one of this corpus's shards — always
// true for a corpus opened whole, false for other nodes' documents when
// the corpus was opened on a shard subset (OpenOptions.Shards). Doc views
// of unowned documents resolve names only.
func (c *Corpus) Owns(doc DocID) bool { return c.c.Owns(doc) }

// Close closes every shard's backend (a no-op for in-memory corpora).
func (c *Corpus) Close() error { return c.c.Close() }

// Corpus converts a Database into the equivalent one-shard Corpus. The
// corpus shares the database's backend; DocIDs follow the order the
// documents were added to the database's builder, with empty names.
func (db *Database) Corpus() (*Corpus, error) {
	return corpusFromBackend(db.be)
}

// corpusFromBackend wraps a single backend — holding one or many documents
// — as a one-shard corpus with an unnamed document table.
func corpusFromBackend(be backend.Backend) (*Corpus, error) {
	sh := corpus.NewShard(be, nil)
	docs := make([]backend.CorpusDoc, sh.NumDocs())
	c, err := corpus.New([]*corpus.Shard{sh}, docs)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// corpusConfig translates the shared query options into the corpus
// engine's configuration. Auto defers the strategy to the per-shard
// planner.
func (c *Corpus) corpusConfig(qc queryConfig, strategy Strategy) corpus.Config {
	return corpus.Config{
		Direct:      strategy == Direct,
		Auto:        strategy == Auto,
		InitialK:    qc.initialK,
		Delta:       qc.delta,
		Growth:      qc.growth,
		MaxK:        qc.maxK,
		Parallelism: qc.parallel,
		Metrics:     qc.metrics,
	}
}

func corpusOptions(opts []QueryOption) queryConfig {
	qc := queryConfig{model: NewCostModel()}
	for _, o := range opts {
		o(&qc)
	}
	return qc
}

// Search returns the best n hits for an approXQL query across the whole
// corpus, ranked by ascending (cost, doc, root). n <= 0 returns all
// approximate hits. It accepts the same options as Database.Search;
// WithParallelism bounds the shard-level worker pool.
func (c *Corpus) Search(query string, n int, opts ...QueryOption) ([]Hit, error) {
	return c.SearchContext(context.Background(), query, n, opts...)
}

// SearchContext is Search with cancellation.
func (c *Corpus) SearchContext(ctx context.Context, query string, n int, opts ...QueryOption) ([]Hit, error) {
	qc := corpusOptions(opts)
	x, err := parseExpand(query, &qc)
	if err != nil {
		return nil, err
	}
	strategy := qc.strategy
	if strategy != Auto && strategy != Direct && strategy != SchemaDriven {
		return nil, fmt.Errorf("approxql: unknown strategy %d", strategy)
	}
	hits, err := c.c.Search(ctx, x, n, c.corpusConfig(qc, strategy))
	if err != nil {
		return nil, err
	}
	out := make([]Hit, len(hits))
	for i, h := range hits {
		out[i] = Hit{Doc: h.Doc, Result: Result{Root: h.Root, Cost: h.Cost}}
	}
	return out, nil
}

// Plan runs only the planner for a query across the corpus: the per-shard
// strategy split an Auto search would use, without executing anything
// beyond count-only index probes. Strategy is the majority pick; Estimate
// sums the per-shard estimates. It is the corpus analog of Database.Plan.
func (c *Corpus) Plan(query string, n int, opts ...QueryOption) (PlanDecision, error) {
	qc := corpusOptions(opts)
	x, err := parseExpand(query, &qc)
	if err != nil {
		return PlanDecision{}, err
	}
	s := c.c.Plan(x, n)
	out := PlanDecision{
		Estimate:     s.Estimate,
		PlanSpace:    s.PlanSpace,
		Probes:       s.Probes,
		InitialK:     s.InitialK,
		Delta:        s.Delta,
		Growth:       s.Growth,
		DirectShards: s.DirectShards,
		SchemaShards: s.SchemaShards,
	}
	if s.DirectShards >= s.SchemaShards {
		out.Strategy = Direct
	} else {
		out.Strategy = SchemaDriven
	}
	return out, nil
}

// Stream retrieves hits incrementally in ascending (cost, doc, root)
// order, calling fn for each; fn returns false to stop. Shards stream
// concurrently and are merged into one globally ordered sequence.
func (c *Corpus) Stream(query string, fn func(Hit) bool, opts ...QueryOption) error {
	return c.StreamContext(context.Background(), query, fn, opts...)
}

// StreamContext is Stream with cancellation. When fn stops the stream the
// return is nil; when the context fires first it is ctx.Err().
func (c *Corpus) StreamContext(ctx context.Context, query string, fn func(Hit) bool, opts ...QueryOption) error {
	qc := corpusOptions(opts)
	x, err := parseExpand(query, &qc)
	if err != nil {
		return err
	}
	return c.c.Stream(ctx, x, c.corpusConfig(qc, SchemaDriven), func(h corpus.Hit) bool {
		return fn(Hit{Doc: h.Doc, Result: Result{Root: h.Root, Cost: h.Cost}})
	})
}

// CorpusPlan is one transformed query of a corpus Explain, aggregated
// across shards by its label structure (shard schemas are independent, so
// schema-class identifiers cannot be compared across shards).
type CorpusPlan struct {
	// Rendered is the label-structure form, e.g. "cd[title[concerto]]".
	Rendered string
	// Cost is the embedding cost every result of this plan receives.
	Cost Cost
	// Results is the retrieved-subtree count summed over shards.
	Results int
	// Shards counts the shards whose schema generates this plan.
	Shards int
}

// Explain returns the best k second-level queries across the corpus with
// their costs and total result counts, merged over shards. It is the
// corpus analog of Database.Explain; counts come from the count-only
// execution path.
func (c *Corpus) Explain(query string, k int, opts ...QueryOption) ([]CorpusPlan, error) {
	return c.ExplainContext(context.Background(), query, k, opts...)
}

// ExplainContext is Explain with cancellation.
func (c *Corpus) ExplainContext(ctx context.Context, query string, k int, opts ...QueryOption) ([]CorpusPlan, error) {
	qc := corpusOptions(opts)
	x, err := parseExpand(query, &qc)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 10
	}
	plans, err := c.c.Explain(ctx, x, k, c.corpusConfig(qc, SchemaDriven))
	if err != nil {
		return nil, err
	}
	out := make([]CorpusPlan, len(plans))
	for i, p := range plans {
		out[i] = CorpusPlan{Rendered: p.Rendered, Cost: p.Cost, Results: p.Results, Shards: p.Shards}
	}
	return out, nil
}

// DocView addresses one corpus document: its name, root, and rendering
// helpers resolving shard-local NodeIDs (as carried by Hits of that
// document).
type DocView struct {
	c  *corpus.Corpus
	id DocID
}

// Doc returns a view of the document. id must be in [0, NumDocs); an
// out-of-range id panics, like an out-of-range slice index.
func (c *Corpus) Doc(id DocID) DocView {
	if id < 0 || int(id) >= c.c.NumDocs() {
		panic(fmt.Sprintf("approxql: DocID %d out of range [0, %d)", id, c.c.NumDocs()))
	}
	return DocView{c: c.c, id: id}
}

// DocOf returns the document containing the shard-local node of a hit.
// It is the identity on h.Doc, provided for symmetry.
func (c *Corpus) DocOf(h Hit) DocView { return c.Doc(h.Doc) }

// ID returns the document's DocID.
func (d DocView) ID() DocID { return d.id }

// Name returns the document's external name (empty when the corpus was
// built without names).
func (d DocView) Name() string { return d.c.DocName(d.id) }

// Root returns the document's root node in its shard tree.
func (d DocView) Root() NodeID { return d.c.DocRoot(d.id) }

// Render pretty-prints the whole document.
func (d DocView) Render() string { return d.RenderNode(d.Root()) }

// RenderNode pretty-prints the subtree rooted at a node of this
// document's shard tree — typically a Hit.Root.
func (d DocView) RenderNode(u NodeID) string {
	return d.c.ShardOf(d.id).Backend().Tree().RenderString(u)
}

// Label returns the label of a node of this document's shard tree.
func (d DocView) Label(u NodeID) string {
	return d.c.ShardOf(d.id).Backend().Tree().Label(u)
}

// Path returns the label-type path of a node of this document's shard
// tree, e.g. "<root>/catalog/cd".
func (d DocView) Path(u NodeID) string {
	return d.c.ShardOf(d.id).Backend().Tree().LabelTypePath(u)
}

// CorpusStats summarizes a corpus.
type CorpusStats struct {
	// Docs and Shards count documents and shards.
	Docs   int
	Shards int
	// Nodes totals the shard trees' nodes (each shard's super-root
	// included).
	Nodes int
	// MaxDepth is the deepest root-to-leaf path over all shards.
	MaxDepth int
	// BundleVersion is the manifest version the corpus was opened from
	// (the highest across shards), or 0 for in-memory corpora and stored
	// backends opened from bare index files.
	BundleVersion int
	// StorageCounted reports whether every stored shard's index files
	// carry per-subtree counters (the v4 storage format), making posting
	// counts O(log n) for the planner. False when any shard predates the
	// counter format or when no shard reads from stored indexes.
	StorageCounted bool
}

// Stats aggregates the per-shard summaries. Docs counts the documents
// this corpus actually serves — the full table for a whole bundle,
// fewer when opened on a shard subset.
func (c *Corpus) Stats() CorpusStats {
	st := CorpusStats{Docs: c.c.NumOwnedDocs(), Shards: c.c.NumShards()}
	stored, counted := 0, true
	for _, sh := range c.c.Shards() {
		sum := sh.Summary()
		st.Nodes += sum.Nodes
		if sum.MaxDepth > st.MaxDepth {
			st.MaxDepth = sum.MaxDepth
		}
		if s, ok := sh.Backend().(*backend.Stored); ok {
			stored++
			if v := s.ManifestVersion(); v > st.BundleVersion {
				st.BundleVersion = v
			}
			if !s.StorageCounted() {
				counted = false
			}
		}
	}
	st.StorageCounted = stored > 0 && counted
	return st
}

// SetStoredCacheSize divides a total posting-cache budget of n entries
// across the corpus's stored shards (n <= 0 disables caching). It returns
// ErrNotStored when no shard reads from stored indexes — in-memory shards
// have no posting cache to size.
func (c *Corpus) SetStoredCacheSize(n int) error {
	var stored []*backend.Stored
	for _, sh := range c.c.Shards() {
		if s, ok := sh.Backend().(*backend.Stored); ok {
			stored = append(stored, s)
		}
	}
	if len(stored) == 0 {
		return ErrNotStored
	}
	per := n / len(stored)
	if n > 0 && per < 1 {
		per = 1
	}
	for _, s := range stored {
		s.SetCacheCapacity(per)
	}
	return nil
}

// SaveBundle persists the corpus as a multi-shard (v3) bundle at path:
// each shard's collection, postings, and secondary files are written next
// to the manifest, named after the manifest's base name ("c.bundle" yields
// "c.s0.axql", "c.s0.post", "c.s0.sec", ...). Open the result with Open.
// The corpus must be in-memory (built with CorpusBuilder); a corpus opened
// from stored indexes is already persisted.
func (c *Corpus) SaveBundle(path string) error {
	base := strings.TrimSuffix(path, ".bundle")
	m := backend.CorpusManifest{Docs: c.c.DocTable()}
	for i, sh := range c.c.Shards() {
		mem, ok := sh.Backend().(*backend.Memory)
		if !ok {
			return fmt.Errorf("approxql: corpus already reads from stored indexes")
		}
		cs := backend.CorpusShard{
			Collection: fmt.Sprintf("%s.s%d.axql", base, i),
			Postings:   fmt.Sprintf("%s.s%d.post", base, i),
			Secondary:  fmt.Sprintf("%s.s%d.sec", base, i),
			Summary:    sh.Summary(),
		}
		f, err := os.Create(cs.Collection)
		if err != nil {
			return err
		}
		if _, err := mem.Tree().WriteTo(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := persistInto(cs.Postings, func(s *storage.DB) error {
			return index.Save(mem.Index(), s)
		}); err != nil {
			return err
		}
		if err := persistInto(cs.Secondary, func(s *storage.DB) error {
			return mem.Schema().SaveSec(s)
		}); err != nil {
			return err
		}
		m.Shards = append(m.Shards, cs)
	}
	return backend.WriteCorpusBundle(path, m)
}

// IsCorpusBundle reports whether path holds a multi-shard (v3) corpus
// bundle manifest. Open handles every artifact kind without this check; it
// exists for callers that branch before opening, for example to reject
// single-database-only flags.
func IsCorpusBundle(path string) bool { return backend.IsCorpusBundle(path) }

// OpenOptions tune Open. The zero value (or a nil pointer) uses default
// insertion costs and the default per-shard posting cache.
type OpenOptions struct {
	// Model fixes the node-insertion costs, as in NewBuilder; it must
	// match the model used at indexing time.
	Model *CostModel
	// CacheEntries is the total posting-cache budget divided across
	// stored shards; 0 keeps the per-shard default
	// (backend.DefaultCacheEntries each), < 0 disables caching.
	CacheEntries int
	// Shards restricts a multi-shard corpus bundle to the listed shard
	// indices (as numbered in the manifest), opening only their index
	// files — how a cluster shard node serves its slice of a bundle.
	// Global DocIDs are preserved, so hits from different nodes of one
	// bundle stay comparable. Empty opens every shard; non-bundle
	// artifacts reject the option.
	Shards []int
	// MMap serves stored shards' index pages straight out of read-only
	// memory mappings instead of per-shard page caches. Advisory: where
	// mapping is unavailable the pager is used silently, and in-memory
	// artifacts (plain collection files) ignore it. Results are identical
	// either way.
	MMap bool
}

// Open opens any persisted approXQL artifact at path as a Corpus — the
// single entry point subsuming OpenDatabaseFile, OpenBundle, and
// OpenStored:
//
//   - a multi-shard corpus bundle (v3 manifest, written by SaveBundle or
//     axqlindex -shard-docs) opens with all its shards;
//   - a single-shard bundle (v1/v2 manifest) opens as a one-shard corpus
//     over its stored indexes;
//   - a plain collection file (written by Database.WriteTo) loads into a
//     one-shard in-memory corpus, rebuilding indexes and schema.
//
// Close the corpus to release stored shards' index files.
func Open(path string, opts *OpenOptions) (*Corpus, error) {
	var o OpenOptions
	if opts != nil {
		o = *opts
	}
	switch {
	case backend.IsCorpusBundle(path):
		return openCorpusBundle(path, o)
	case len(o.Shards) > 0:
		return nil, fmt.Errorf("approxql: %s is not a multi-shard corpus bundle; Shards requires one", path)
	case backend.IsBundle(path):
		db, err := openBundle(path, o.Model, backend.StoredOptions{
			CacheEntries: backend.DefaultCacheEntries, MMap: o.MMap,
		})
		if err != nil {
			return nil, err
		}
		c, err := db.Corpus()
		if err != nil {
			db.Close()
			return nil, err
		}
		if o.CacheEntries != 0 {
			if err := c.SetStoredCacheSize(o.CacheEntries); err != nil {
				c.Close()
				return nil, err
			}
		}
		return c, nil
	default:
		db, err := OpenDatabaseFile(path, o.Model)
		if err != nil {
			return nil, err
		}
		return db.Corpus()
	}
}

// openCorpusBundle opens a v3 manifest: every shard (or just
// o.Shards) over its stored indexes, with the manifest's pruning
// summaries.
func openCorpusBundle(path string, o OpenOptions) (*Corpus, error) {
	m, err := backend.ReadCorpusBundle(path)
	if err != nil {
		return nil, err
	}
	keep := o.Shards
	if len(keep) == 0 {
		keep = make([]int, len(m.Shards))
		for i := range keep {
			keep[i] = i
		}
	} else {
		keep = append([]int(nil), keep...)
		sort.Ints(keep)
		for i, si := range keep {
			if si < 0 || si >= len(m.Shards) {
				return nil, fmt.Errorf("approxql: shard index %d out of range [0, %d)", si, len(m.Shards))
			}
			if i > 0 && keep[i-1] == si {
				return nil, fmt.Errorf("approxql: shard index %d listed twice", si)
			}
		}
	}
	perShard := backend.DefaultCacheEntries
	if o.CacheEntries != 0 {
		perShard = o.CacheEntries / len(keep)
		if o.CacheEntries > 0 && perShard < 1 {
			perShard = 1
		}
	}
	shards := make([]*corpus.Shard, 0, len(keep))
	closeAll := func() {
		for _, sh := range shards {
			sh.Backend().Close()
		}
	}
	for _, si := range keep {
		cs := m.Shards[si]
		f, err := os.Open(cs.Collection)
		if err != nil {
			closeAll()
			return nil, err
		}
		tree, err := xmltree.ReadTree(f, o.Model)
		f.Close()
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("%s: %w", cs.Collection, err)
		}
		be, err := backend.OpenStoredOptions(tree, cs.Postings, cs.Secondary,
			backend.StoredOptions{CacheEntries: perShard, MMap: o.MMap})
		if err != nil {
			closeAll()
			return nil, err
		}
		be.SetManifestVersion(m.Version)
		shards = append(shards, corpus.NewShard(be, cs.Summary))
	}
	c, err := corpus.NewSubset(shards, keep, len(m.Shards), m.Docs)
	if err != nil {
		closeAll()
		return nil, err
	}
	return &Corpus{c: c}, nil
}
