package approxql

import "testing"

const mediaXML = `
<catalog>
  <cd><title>Piano Concerto</title><composer>Rachmaninov</composer></cd>
  <cd><title>Cello Sonata</title><performer>Rostropovich</performer></cd>
  <dvd><title>Piano Recital</title><performer>Argerich</performer></dvd>
  <mc><title>Concerto Grosso</title><composer>Handel</composer></mc>
</catalog>`

func buildMediaDB(t *testing.T) *Database {
	t.Helper()
	b := NewBuilder(nil)
	if err := b.AddXMLString(mediaXML); err != nil {
		t.Fatal(err)
	}
	db, err := b.Database()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSuggestCostModel(t *testing.T) {
	db := buildMediaDB(t)
	query := `cd[title["concerto"] and composer["rachmaninov"]]`
	model, err := db.SuggestCostModel(query, SuggestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The heuristic should offer media-type renamings for cd...
	cdRenames := model.Renamings("cd", Struct)
	if len(cdRenames) == 0 {
		t.Fatal("no renamings suggested for cd")
	}
	targets := make(map[string]bool)
	for _, r := range cdRenames {
		targets[r.To] = true
	}
	if !targets["mc"] && !targets["dvd"] {
		t.Errorf("cd renamings = %v, want media types", cdRenames)
	}
	// ...and composer↔performer.
	found := false
	for _, r := range model.Renamings("composer", Struct) {
		if r.To == "performer" {
			found = true
		}
	}
	if !found {
		t.Errorf("composer renamings = %v, want performer", model.Renamings("composer", Struct))
	}
	// The suggested model must widen the result set compared to the
	// default model.
	strict, err := db.Search(query, 0)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := db.Search(query, 0, WithCostModel(model))
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) <= len(strict) {
		t.Errorf("suggested model found %d results, default %d", len(loose), len(strict))
	}
	// Exact matches still rank first.
	if len(loose) > 0 && loose[0].Cost != 0 {
		t.Errorf("best result under suggested model costs %d", loose[0].Cost)
	}
}

func TestSuggestCostModelSyntaxError(t *testing.T) {
	db := buildMediaDB(t)
	if _, err := db.SuggestCostModel(`cd[`, SuggestOptions{}); err == nil {
		t.Error("syntax error not reported")
	}
}
