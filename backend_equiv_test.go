package approxql

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"approxql/internal/backend"
	"approxql/internal/datagen"
	"approxql/internal/index"
	"approxql/internal/querygen"
)

// persistBundle writes db's collection file, both index stores, and a bundle
// manifest into a temp dir, returning the bundle path.
func persistBundle(t *testing.T, db *Database) string {
	t.Helper()
	dir := t.TempDir()
	collection := filepath.Join(dir, "c.axql")
	postings := filepath.Join(dir, "c.post")
	secondary := filepath.Join(dir, "c.sec")
	bundle := filepath.Join(dir, "c.bundle")

	f, err := os.Create(collection)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.PersistIndexes(postings, secondary); err != nil {
		t.Fatal(err)
	}
	if err := WriteBundle(bundle, collection, postings, secondary); err != nil {
		t.Fatal(err)
	}
	return bundle
}

// TestBackendEquivalence is the cross-backend contract: Search,
// SearchExplained, and Explain return identical answers whether the postings
// come from the in-memory indexes or from the persisted B+tree files, for
// every strategy (planner-resolved Auto included), for sequential and
// parallel secondary execution, across the page-cache and mmap read paths,
// and across the v2 (blocked varint) and v3 (group varint) posting codecs.
func TestBackendEquivalence(t *testing.T) {
	cfg := datagen.Config{
		Seed: 42, NumElementNames: 25, VocabularySize: 500,
		TargetElements: 4000, TargetWords: 15000,
		TemplateNodes: 80, MaxDepth: 6, MaxRepeat: 3, ZipfSkew: 1.3,
	}
	tree, err := datagen.GenerateTree(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem := newDatabase(tree)
	bundle := persistBundle(t, mem)
	// A second copy of the bundle with every posting re-encoded in the v2
	// codec, as a pre-v5 writer would have left it.
	bundleV2 := persistBundle(t, mem)
	downgradeStore(t, strings.TrimSuffix(bundleV2, ".bundle")+".post", index.EncodePostingV2)
	downgradeStore(t, strings.TrimSuffix(bundleV2, ".bundle")+".sec", index.EncodePostingV2)

	variants := []struct {
		name string
		path string
		mmap bool
	}{
		{"pager-v3", bundle, false},
		{"mmap-v3", bundle, true},
		{"pager-v2", bundleV2, false},
		{"mmap-v2", bundleV2, true},
	}
	storedDBs := make([]*Database, len(variants))
	for i, v := range variants {
		db, err := openBundle(v.path, nil, backend.StoredOptions{
			CacheEntries: backend.DefaultCacheEntries, MMap: v.mmap,
		})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		defer db.Close()
		if v.mmap && !db.be.(*backend.Stored).MMapped() {
			t.Logf("%s: mmap unavailable on this platform, exercising the pager fallback", v.name)
		}
		storedDBs[i] = db
	}
	stored := storedDBs[0]
	if stored.Index() != nil {
		t.Fatal("stored database exposes in-memory indexes")
	}
	if err := stored.PersistIndexes(bundle+".p", bundle+".s"); err == nil {
		t.Fatal("PersistIndexes accepted a stored database")
	}

	qg, err := querygen.New(mem.Tree(), 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	var lastQuery string
	var lastModel *CostModel
	for _, p := range querygen.PaperPatterns {
		for _, ren := range []int{0, 5} {
			set, err := qg.GenerateSet(p, ren, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range set {
				query := g.Query.String()
				lastQuery, lastModel = query, g.Model
				for _, strategy := range []Strategy{Direct, SchemaDriven, Auto} {
					for _, workers := range []int{1, 8} {
						opts := []QueryOption{
							WithCostModel(g.Model),
							WithStrategy(strategy),
							WithParallelism(workers),
						}
						want, err := mem.Search(query, n, opts...)
						if err != nil {
							t.Fatal(err)
						}
						for vi, db := range storedDBs {
							got, err := db.Search(query, n, opts...)
							if err != nil {
								t.Fatal(err)
							}
							if !sameResults(want, got) {
								t.Fatalf("%s (strategy=%v workers=%d): memory %v vs %s %v",
									query, strategy, workers, want, variants[vi].name, got)
							}
						}
					}
				}

				// SearchExplained (schema-driven only) and Explain.
				opts := []QueryOption{WithCostModel(g.Model), WithParallelism(1)}
				wantEx, err := mem.SearchExplained(query, n, opts...)
				if err != nil {
					t.Fatal(err)
				}
				gotEx, err := stored.SearchExplained(query, n, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if len(wantEx) != len(gotEx) {
					t.Fatalf("%s: explained count %d vs %d", query, len(wantEx), len(gotEx))
				}
				for i := range wantEx {
					if wantEx[i].Root != gotEx[i].Root || wantEx[i].Cost != gotEx[i].Cost {
						t.Fatalf("%s: explained[%d] = %+v vs %+v", query, i, wantEx[i], gotEx[i])
					}
				}

				wantPlans, err := mem.Explain(query, 5, opts...)
				if err != nil {
					t.Fatal(err)
				}
				gotPlans, err := stored.Explain(query, 5, opts...)
				if err != nil {
					t.Fatal(err)
				}
				if len(wantPlans) != len(gotPlans) {
					t.Fatalf("%s: plan count %d vs %d", query, len(wantPlans), len(gotPlans))
				}
				for i := range wantPlans {
					if wantPlans[i].Cost != gotPlans[i].Cost ||
						wantPlans[i].Results != gotPlans[i].Results ||
						wantPlans[i].Rendered != gotPlans[i].Rendered {
						t.Fatalf("%s: plan[%d] = %+v vs %+v", query, i, wantPlans[i], gotPlans[i])
					}
				}
			}
		}
	}

	// The stored path must actually account its fetches, down to the page
	// level. Disabling the posting cache forces every fetch to storage so
	// the page counter cannot be masked by earlier runs.
	stored.SetStoredCacheSize(0)
	var m QueryMetrics
	if _, err := stored.Search(lastQuery, n,
		WithCostModel(lastModel), WithStrategy(SchemaDriven), WithMetrics(&m)); err != nil {
		t.Fatal(err)
	}
	if m.BackendFetches == 0 {
		t.Error("stored query reported zero backend fetches")
	}
	if m.PageReads == 0 {
		t.Error("stored query reported zero page reads")
	}
}

// sameResults compares ranked results exactly by root and cost, tolerating
// permutations within one cost tier (parallel execution may reorder ties).
func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	used := make([]bool, len(b))
	for _, r := range a {
		found := false
		for j, s := range b {
			if !used[j] && r.Cost == s.Cost && r.Root == s.Root {
				used[j] = true
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestStoredBackendConcurrentQueries runs mixed-strategy searches against one
// stored database from many goroutines: the shared LRU, the read-only B+tree
// handles, and the lazily built schema must all tolerate it. Run with -race.
func TestStoredBackendConcurrentQueries(t *testing.T) {
	mem := buildDB(t)
	bundle := persistBundle(t, mem)
	stored, err := OpenBundle(bundle, PaperCostModel())
	if err != nil {
		t.Fatal(err)
	}
	defer stored.Close()
	// A tiny cache keeps eviction churning under load.
	stored.SetStoredCacheSize(4)

	model := PaperCostModel()
	queries := []string{
		`cd[title["concerto"]]`,
		`cd[title["piano" and "concerto"]]`,
		`cd[title["concerto" or "sonata"]]`,
		`mc[title["concerto"]]`,
	}
	want := make(map[string][]Result)
	for _, q := range queries {
		res, err := mem.Search(q, 0, WithCostModel(model))
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				q := queries[(g+i)%len(queries)]
				strategy := Direct
				if (g+i)%2 == 0 {
					strategy = SchemaDriven
				}
				res, err := stored.Search(q, 0, WithCostModel(model), WithStrategy(strategy))
				if err != nil {
					t.Errorf("%s: %v", q, err)
					return
				}
				if !sameResults(want[q], res) {
					t.Errorf("%s (strategy=%v): %v, want %v", q, strategy, res, want[q])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
