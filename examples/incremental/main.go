// Incremental demonstrates the "further advantage of the schema-based
// approach" from the paper's conclusion: once the best k second-level
// queries are generated, they can be evaluated successively and results
// sent to the user immediately — here through Database.Stream, which
// delivers answers in ascending cost order as each transformed query
// completes.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"strings"

	"approxql"
)

func main() {
	// A small digital-library collection with varying structure.
	b := approxql.NewBuilder(nil)
	docs := []string{
		`<library><book><title>Distributed Systems</title><author>Tanenbaum</author></book></library>`,
		`<library><book><chapters><chapter><title>Distributed Algorithms</title></chapter></chapters><author>Lynch</author></book></library>`,
		`<library><article><title>Distributed Query Processing</title><author>Kossmann</author></article></library>`,
		`<library><book><title>Database Systems</title><editor>Tanenbaum</editor></book></library>`,
		`<library><proceedings><title>EDBT 2002</title><article><title>Distributed Joins</title></article></proceedings></library>`,
	}
	for _, d := range docs {
		if err := b.AddXMLString(d); err != nil {
			log.Fatal(err)
		}
	}
	db, err := b.Database()
	if err != nil {
		log.Fatal(err)
	}

	model := approxql.NewCostModel()
	model.AddRenaming("book", "article", approxql.Struct, 3)
	model.AddRenaming("book", "proceedings", approxql.Struct, 5)
	model.AddRenaming("author", "editor", approxql.Struct, 2)
	model.SetDelete("chapters", approxql.Struct, 1)
	model.SetDelete("chapter", approxql.Struct, 1)
	model.SetDelete("author", approxql.Struct, 6)
	// Coordination-level match: results matching only one search term
	// still surface, at a high cost.
	model.SetDelete("tanenbaum", approxql.Text, 7)
	model.SetDelete("distributed", approxql.Text, 8)

	query := `book[title["distributed"] and author["tanenbaum"]]`
	fmt.Printf("query: %s\n\nresults stream in as second-level queries finish:\n", query)

	rank := 0
	err = db.Stream(query, func(r approxql.Result) bool {
		rank++
		first := strings.SplitN(db.Render(r.Root), "\n", 2)[0]
		fmt.Printf("  -> #%d cost %-3d %-30s %s\n", rank, r.Cost, db.Path(r.Root), first)
		// A UI would render each hit immediately; stop after five.
		return rank < 5
	}, approxql.WithCostModel(model))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstreamed %d results without computing the full result list\n", rank)
}
