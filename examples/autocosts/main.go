// Autocosts demonstrates the cost-model derivation heuristics (the paper's
// future-work item on domain-specific cost rules): the engine inspects the
// collection's schema, proposes renamings between element names and terms
// used in similar contexts, prices deletions by structural significance, and
// explains each retrieved result with the transformed query that found it.
//
//	go run ./examples/autocosts
package main

import (
	"fmt"
	"log"

	"approxql"
)

const catalog = `
<catalog>
  <cd><title>Piano Concerto No 2</title><composer>Rachmaninov</composer></cd>
  <cd><title>Cello Suite</title><performer>Casals</performer></cd>
  <mc><title>Piano Concerto No 1</title><composer>Tchaikovsky</composer></mc>
  <dvd><title>Piano Recital Live</title><performer>Argerich</performer></dvd>
  <cd><title>Violin Concerto</title><composer>Sibelius</composer></cd>
</catalog>`

func main() {
	b := approxql.NewBuilder(nil)
	if err := b.AddXMLString(catalog); err != nil {
		log.Fatal(err)
	}
	db, err := b.Database()
	if err != nil {
		log.Fatal(err)
	}

	query := `cd[title["piano" and "concerto"] and composer["rachmaninov"]]`
	fmt.Printf("query: %s\n\n", query)

	// Derive a cost model from the collection structure instead of
	// hand-writing one.
	model, err := db.SuggestCostModel(query, approxql.SuggestOptions{MaxRenamings: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("derived transformation costs:")
	for _, l := range []struct {
		name string
		kind approxql.Kind
	}{{"cd", approxql.Struct}, {"composer", approxql.Struct}, {"concerto", approxql.Text}} {
		fmt.Printf("  %s (%v): delete %s", l.name, l.kind, costString(model.DeleteCost(l.name, l.kind)))
		for _, r := range model.Renamings(l.name, l.kind) {
			fmt.Printf(", →%s %d", r.To, r.Cost)
		}
		fmt.Println()
	}

	// Search with the derived model and show, per result, the transformed
	// query that retrieved it.
	results, err := db.SearchExplained(query, 5, approxql.WithCostModel(model))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d results:\n", len(results))
	for i, r := range results {
		fmt.Printf("#%d cost %-3d %-24s via %s\n", i+1, r.Cost, db.Path(r.Root), r.Plan)
	}
}

func costString(c approxql.Cost) string {
	if c >= approxql.Inf {
		return "forbidden"
	}
	return fmt.Sprintf("%d", c)
}
