// Musiccatalog reproduces the paper's motivating scenario (Section 1): a
// user searches a catalog of sound storage media for piano concertos by
// Rachmaninov and wants similar results ranked by preference —
//
//   - CDs whose *album* title matches beat CDs where only a *track* title
//     matches (node insertions make deeper contexts cost more),
//   - the composer Rachmaninov beats the performer Rachmaninov (renaming),
//   - other media (MC, DVD) are acceptable at a higher cost (renaming),
//   - a CD matching only one search term still appears (leaf deletion).
//
// A plain XQL-style exact query returns only the first CD; approXQL ranks
// all of them. Run with:
//
//	go run ./examples/musiccatalog
package main

import (
	"fmt"
	"log"

	"approxql"
)

const catalog = `
<catalog>
  <cd id="1">
    <title>Piano Concerto No 2 in C minor</title>
    <composer>Sergei Rachmaninov</composer>
    <performer>Krystian Zimerman</performer>
  </cd>
  <cd id="2">
    <tracks>
      <track><title>Piano Concerto No 3: Allegro</title></track>
      <track><title>Piano Concerto No 3: Intermezzo</title></track>
    </tracks>
    <composer>Sergei Rachmaninov</composer>
  </cd>
  <cd id="3">
    <title>Famous Piano Concertos</title>
    <performer>Sergei Rachmaninov</performer>
  </cd>
  <mc id="4">
    <title>Piano Concerto No 2</title>
    <composer>Sergei Rachmaninov</composer>
  </mc>
  <cd id="5">
    <title>Piano Sonatas</title>
    <composer>Sergei Rachmaninov</composer>
  </cd>
  <cd id="6">
    <title>Cello Concerto</title>
    <composer>Edward Elgar</composer>
  </cd>
</catalog>`

func main() {
	b := approxql.NewBuilder(nil)
	if err := b.AddXMLString(catalog); err != nil {
		log.Fatal(err)
	}
	db, err := b.Database()
	if err != nil {
		log.Fatal(err)
	}

	// The user's preferences as transformation costs, in the spirit of
	// the paper's Section 6 example table.
	model := approxql.NewCostModel()
	model.SetDelete("tracks", approxql.Struct, 1)
	model.SetDelete("track", approxql.Struct, 2) // track titles: small penalty
	model.AddRenaming("cd", "mc", approxql.Struct, 4)
	model.AddRenaming("cd", "dvd", approxql.Struct, 6)
	model.AddRenaming("composer", "performer", approxql.Struct, 5)
	model.AddRenaming("concerto", "sonata", approxql.Text, 7)
	model.SetDelete("piano", approxql.Text, 8) // dropping a search term: last resort
	model.SetDelete("concerto", approxql.Text, 8)

	query := `cd[title["piano" and "concerto"] and composer["rachmaninov"]]`
	fmt.Printf("query: %s\n", query)

	// A search without a cost model allows no deletions or renamings:
	// only CDs that really contain all three conditions qualify (node
	// insertions still rank deeper contexts lower).
	exact, err := db.Search(query, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontainment semantics: %d result(s)\n", len(exact))

	// The approximate search ranks every similar catalog entry.
	results, err := db.Search(query, 0, approxql.WithCostModel(model))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate semantics: %d results\n\n", len(results))
	for i, r := range results {
		fmt.Printf("#%d (cost %d)\n%s\n", i+1, r.Cost, db.Render(r.Root))
	}

	// Explain shows the transformed queries the schema-driven planner
	// would run, with their costs — the tool for tuning the cost model.
	fmt.Println("best transformed queries (schema-driven plan):")
	plans, err := db.Explain(query, 6, approxql.WithCostModel(model))
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range plans {
		fmt.Printf("%2d. cost %-3d results %-3d %s\n", i+1, p.Cost, p.Results, p.Rendered)
	}
}
