// Quickstart: index a tiny CD catalog and run one approximate query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"approxql"
)

const catalog = `
<catalog>
  <cd>
    <title>Piano Concerto No. 2</title>
    <composer>Rachmaninov</composer>
  </cd>
  <cd>
    <tracks>
      <track><title>Piano Sonata in B minor</title></track>
    </tracks>
    <composer>Liszt</composer>
  </cd>
  <mc>
    <title>Piano Concerto</title>
    <composer>Grieg</composer>
  </mc>
</catalog>`

func main() {
	// 1. Index the collection.
	b := approxql.NewBuilder(nil)
	if err := b.AddXMLString(catalog); err != nil {
		log.Fatal(err)
	}
	db, err := b.Database()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Describe which transformations are acceptable and what they
	// cost. Everything not listed is forbidden, so results stay close to
	// the query.
	model := approxql.NewCostModel()
	model.AddRenaming("cd", "mc", approxql.Struct, 4) // MCs are okay-ish
	model.SetDelete("track", approxql.Struct, 2)      // track titles count
	model.SetDelete("tracks", approxql.Struct, 1)     //
	model.AddRenaming("concerto", "sonata", approxql.Text, 3)

	// 3. Search. Results are ranked by transformation cost; 0 is exact.
	query := `cd[title["piano" and "concerto"]]`
	results, err := db.Search(query, 5, approxql.WithCostModel(model))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query: %s\n\n", query)
	for i, r := range results {
		fmt.Printf("#%d (cost %d) %s\n%s\n", i+1, r.Cost, db.Path(r.Root), db.Render(r.Root))
	}
}
