// Synthetic runs a miniature version of the paper's Section 8 experiment:
// it generates a synthetic collection (Aboulnaga et al. generator), fills
// the paper's three query patterns with random labels, and compares the
// direct and the schema-driven best-n algorithms at several n.
//
//	go run ./examples/synthetic
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"approxql"
	"approxql/internal/datagen"
	"approxql/internal/querygen"
)

func main() {
	// Generate roughly 20k elements / 100k words (2% of the paper's
	// collection) deterministically.
	cfg := datagen.Paper(1).Scale(0.02)
	fmt.Printf("generating %d elements, %d words...\n", cfg.TargetElements, cfg.TargetWords)
	tree, err := datagen.GenerateTree(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	// Move the generated tree into the public Database type through its
	// serialization format.
	var buf bytes.Buffer
	if _, err := tree.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	db, err := approxql.ReadDatabase(&buf, nil)
	if err != nil {
		log.Fatal(err)
	}

	st := tree.ComputeStats()
	sch := db.Schema().ComputeStats()
	fmt.Printf("collection: %d nodes, schema: %d classes (largest class %d)\n\n",
		st.Nodes, sch.Classes, sch.MaxInstances)

	qg, err := querygen.New(tree, 42)
	if err != nil {
		log.Fatal(err)
	}
	for _, pattern := range querygen.PaperPatterns {
		gen, err := qg.Generate(pattern, 5) // 5 renamings per label
		if err != nil {
			log.Fatal(err)
		}
		query := gen.Query.String()
		fmt.Printf("%s (%s)\n  %s\n", pattern.Name, pattern.Desc, query)
		for _, n := range []int{1, 10, 100} {
			direct := timeSearch(db, query, n, gen.Model, approxql.Direct)
			schema := timeSearch(db, query, n, gen.Model, approxql.SchemaDriven)
			fmt.Printf("  n=%-4d direct %-12v schema %v\n", n, direct, schema)
		}
		fmt.Println()
	}
}

func timeSearch(db *approxql.Database, query string, n int, m *approxql.CostModel, s approxql.Strategy) time.Duration {
	start := time.Now()
	if _, err := db.Search(query, n,
		approxql.WithCostModel(m), approxql.WithStrategy(s)); err != nil {
		log.Fatal(err)
	}
	return time.Since(start).Round(time.Microsecond)
}
