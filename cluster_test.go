// Cluster tests live in the external test package: they drive the public
// facade through internal/server's HTTP handlers, and internal/server
// itself imports approxql.
package approxql_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"approxql"
	"approxql/internal/datagen"
	"approxql/internal/querygen"
	"approxql/internal/server"
)

// clusterWorld is the shared fixture: synthetic documents, generated
// queries with non-trivial cost spreads, and one saved corpus bundle per
// shard layout.
type clusterWorld struct {
	queries []clusterQuery
	bundles map[int]string // shard count -> bundle path
	shards  map[int]int    // shard count -> actual shards in the bundle
}

type clusterQuery struct {
	name  string
	query string
	model *approxql.CostModel
}

func buildClusterWorld(t *testing.T, dir string) *clusterWorld {
	t.Helper()
	g, err := datagen.New(datagen.Config{
		Seed:            17,
		NumElementNames: 50,
		VocabularySize:  1_500,
		TargetElements:  4_000,
		TargetWords:     12_000,
		TemplateNodes:   40,
		MaxDepth:        6,
		MaxRepeat:       2,
		ZipfSkew:        1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for !g.Done() && len(docs) < 12 {
		var buf bytes.Buffer
		if err := g.WriteDocumentXML(&buf); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, buf.String())
	}
	if len(docs) < 8 {
		t.Fatalf("datagen produced only %d documents", len(docs))
	}

	b := approxql.NewBuilder(nil)
	for _, d := range docs {
		if err := b.AddXMLString(d); err != nil {
			t.Fatal(err)
		}
	}
	db, err := b.Database()
	if err != nil {
		t.Fatal(err)
	}
	qg, err := querygen.New(db.Tree(), 23)
	if err != nil {
		t.Fatal(err)
	}
	w := &clusterWorld{bundles: make(map[int]string), shards: make(map[int]int)}
	for _, pattern := range []querygen.Pattern{querygen.PaperPatterns[0], querygen.PaperPatterns[2]} {
		for _, renamings := range []int{0, 5} {
			gq, err := qg.Generate(pattern, renamings)
			if err != nil {
				t.Fatal(err)
			}
			w.queries = append(w.queries, clusterQuery{
				name:  fmt.Sprintf("%s/renamings=%d", pattern.Name, renamings),
				query: gq.Query.String(),
				model: gq.Model,
			})
		}
	}

	for _, shards := range []int{1, 2, 7} {
		cb := approxql.NewCorpusBuilder(nil)
		cb.SetShardSize((len(docs) + shards - 1) / shards)
		for i, d := range docs {
			if _, err := cb.AddDocumentString(fmt.Sprintf("doc%02d.xml", i), d); err != nil {
				t.Fatal(err)
			}
		}
		c, err := cb.Corpus()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("c%d.bundle", shards))
		if err := c.SaveBundle(path); err != nil {
			t.Fatal(err)
		}
		w.shards[shards] = c.NumShards()
		w.bundles[shards] = path
		c.Close()
	}
	return w
}

// startShardNode serves the given shard subset of a bundle over the wire
// protocol, returning its base URL. model plays the role of the -costs
// file a deployment hands every node: a query's rename/delete costs are
// node-side configuration, not part of the wire protocol, and the cluster
// contract requires all nodes (and the gatherer) to agree on them.
func startShardNode(t *testing.T, bundle string, shards []int, model *approxql.CostModel) string {
	t.Helper()
	c, err := approxql.Open(bundle, &approxql.OpenOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	// The generous deadline keeps the slowest full-ranking queries from
	// timing out (and so partially degrading the gather) under -race.
	srv, err := server.New(server.Config{Corpus: c, ShardNode: true, Model: model,
		DefaultTimeout: 5 * time.Minute, MaxTimeout: 5 * time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestClusterEquivalence is the distributed analog of
// TestCorpusEquivalence: a gatherer over shard nodes — each serving a
// disjoint subset of one bundle over HTTP — must return exactly the
// single-process ranking, bit-identical including tie order, names and
// paths resolved by the owning nodes. One layout mixes a remote node with
// the gatherer's own local shards.
func TestClusterEquivalence(t *testing.T) {
	dir := t.TempDir()
	w := buildClusterWorld(t, dir)

	for _, layout := range []int{1, 2, 7} {
		bundle := w.bundles[layout]
		numShards := w.shards[layout]

		ref, err := approxql.Open(bundle, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer ref.Close()

		// Round-robin the bundle's shards over up to 3 nodes. In the
		// widest layout the first subset is served in-process (the
		// gatherer's own corpus), the rest remotely.
		numNodes := min(3, numShards)
		subsets := make([][]int, numNodes)
		for si := 0; si < numShards; si++ {
			subsets[si%numNodes] = append(subsets[si%numNodes], si)
		}
		var local *approxql.Corpus
		localSubset := -1
		if layout == 7 {
			localSubset = 0
			c, err := approxql.Open(bundle, &approxql.OpenOptions{Shards: subsets[0]})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			local = c
		}

		for _, q := range w.queries {
			// Nodes are restarted per query so each carries the query's
			// cost model as its configured -costs equivalent.
			var urls []string
			for ni, subset := range subsets {
				if ni == localSubset {
					continue
				}
				urls = append(urls, startShardNode(t, bundle, subset, q.model))
			}
			cl, err := approxql.NewCluster(urls, local, nil)
			if err != nil {
				t.Fatal(err)
			}
			for _, strategy := range []approxql.Strategy{approxql.Direct, approxql.SchemaDriven, approxql.Auto} {
				for _, n := range []int{5, 0} {
					name := fmt.Sprintf("layout=%d/%s/%s/n=%d", layout, q.name, strategy, n)
					want, err := ref.Search(q.query, n,
						approxql.WithCostModel(q.model), approxql.WithStrategy(strategy))
					if err != nil {
						t.Fatalf("%s: reference: %v", name, err)
					}
					res, err := cl.SearchContext(context.Background(), q.query, n, false,
						approxql.WithCostModel(q.model), approxql.WithStrategy(strategy))
					if err != nil {
						t.Fatalf("%s: cluster: %v", name, err)
					}
					if res.Partial {
						t.Fatalf("%s: partial gather with every node alive", name)
					}
					if len(res.Hits) != len(want) {
						t.Fatalf("%s: got %d hits, want %d\ngot  %v\nwant %v",
							name, len(res.Hits), len(want), res.Hits, want)
					}
					for i, h := range res.Hits {
						if h.Doc != want[i].Doc || h.Root != want[i].Root || h.Cost != want[i].Cost {
							t.Fatalf("%s: hit %d = (%d,%d,%d), want (%d,%d,%d)", name, i,
								h.Doc, h.Root, h.Cost, want[i].Doc, want[i].Root, want[i].Cost)
						}
						if wantName := ref.Doc(want[i].Doc).Name(); h.DocName != wantName {
							t.Fatalf("%s: hit %d doc name %q, want %q", name, i, h.DocName, wantName)
						}
						if wantPath := ref.Doc(want[i].Doc).Path(want[i].Root); h.Path != wantPath {
							t.Fatalf("%s: hit %d path %q, want %q", name, i, h.Path, wantPath)
						}
					}
				}
			}
		}
	}
}

// TestOpenShardSubset pins the subset-opening contract: global DocIDs are
// preserved, Stats counts only owned documents, and a subset answers
// exactly the full corpus's hits restricted to its shards.
func TestOpenShardSubset(t *testing.T) {
	dir := t.TempDir()
	w := buildClusterWorld(t, dir)
	bundle := w.bundles[7]
	numShards := w.shards[7]
	if numShards < 3 {
		t.Fatalf("layout has %d shards, need at least 3", numShards)
	}

	full, err := approxql.Open(bundle, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	sub, err := approxql.Open(bundle, &approxql.OpenOptions{Shards: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	if sub.NumDocs() != full.NumDocs() {
		t.Fatalf("subset NumDocs = %d, want the full table %d", sub.NumDocs(), full.NumDocs())
	}
	if st := sub.Stats(); st.Shards != 2 || st.Docs >= full.Stats().Docs {
		t.Fatalf("subset stats = %+v, want 2 shards and fewer docs than %d", st, full.Stats().Docs)
	}

	q := w.queries[0]
	want, err := full.Search(q.query, 0, approxql.WithCostModel(q.model))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sub.Search(q.query, 0, approxql.WithCostModel(q.model))
	if err != nil {
		t.Fatal(err)
	}
	var owned []approxql.Hit
	for _, h := range want {
		if sub.Owns(h.Doc) {
			owned = append(owned, h)
		}
	}
	if len(got) != len(owned) {
		t.Fatalf("subset returned %d hits, want %d (full ranking restricted to its shards)", len(got), len(owned))
	}
	for i := range got {
		if got[i] != owned[i] {
			t.Fatalf("subset hit %d = %+v, want %+v", i, got[i], owned[i])
		}
		if got[i].Doc < 0 || sub.Doc(got[i].Doc).Name() != full.Doc(got[i].Doc).Name() {
			t.Fatalf("subset hit %d names %q, full corpus %q",
				i, sub.Doc(got[i].Doc).Name(), full.Doc(got[i].Doc).Name())
		}
	}

	for _, bad := range [][]int{{-1}, {0, 0}, {numShards}} {
		if _, err := approxql.Open(bundle, &approxql.OpenOptions{Shards: bad}); err == nil {
			t.Fatalf("Open with Shards=%v succeeded, want error", bad)
		}
	}

	// Stale or wire-derived DocIDs outside the bundle's document table
	// answer false, never panic.
	for _, bad := range []approxql.DocID{-1, approxql.DocID(full.NumDocs()), 1 << 30} {
		if sub.Owns(bad) || full.Owns(bad) {
			t.Fatalf("Owns(%d) = true for an out-of-range DocID", bad)
		}
	}
}

// TestClusterQIDsGloballyUnique pins the wire contract shard-node bound
// registries depend on: nodes key in-flight queries by qid alone, so
// gatherer processes sharing a node must never emit colliding qids — a
// collision would land one gatherer's /shard/bound pushes on the other's
// query and silently drop valid hits. Every Cluster therefore prefixes
// its qids with a fresh random nonce.
func TestClusterQIDsGloballyUnique(t *testing.T) {
	var mu sync.Mutex
	var qids []string
	node := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/shard/query" {
			http.NotFound(w, r)
			return
		}
		var req struct {
			QID string `json:"qid"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode shard query: %v", err)
		}
		mu.Lock()
		qids = append(qids, req.QID)
		mu.Unlock()
		w.Header().Set("Content-Type", "application/x-ndjson")
		fmt.Fprintln(w, `{"done":true,"hits":0}`)
	}))
	defer node.Close()

	// Two gatherer processes each issue their first query to the shared
	// node; a per-process counter alone would name both "q1".
	for i := 0; i < 2; i++ {
		cl, err := approxql.NewCluster([]string{node.URL}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Search(`cd[title]`, 5); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(qids) != 2 {
		t.Fatalf("node saw %d queries, want 2", len(qids))
	}
	if qids[0] == qids[1] {
		t.Fatalf("two gatherers emitted the same qid %q", qids[0])
	}
	for _, q := range qids {
		if strings.HasPrefix(q, "q1.") {
			t.Fatalf("qid %q has no gatherer-unique prefix", q)
		}
	}
}
