package approxql

import (
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"approxql/internal/datagen"
	"approxql/internal/querygen"
)

// corpusWorld is the shared fixture of the corpus tests: D synthetic
// documents as XML strings (so the same bytes feed per-document databases
// and every corpus layout), plus a query generator over the combined
// collection.
type corpusWorld struct {
	docsXML []string
	gen     *querygen.Generator
	queries []corpusQuery
}

type corpusQuery struct {
	name  string
	query string
	model *CostModel
}

var cworld *corpusWorld

func getCorpusWorld(t *testing.T) *corpusWorld {
	t.Helper()
	if cworld != nil {
		return cworld
	}
	// A small template with little repetition yields many small documents
	// (Default's 300-node template packs the whole element budget into one
	// document, useless for a multi-document corpus).
	g, err := datagen.New(datagen.Config{
		Seed:            7,
		NumElementNames: 60,
		VocabularySize:  2_000,
		TargetElements:  6_000,
		TargetWords:     20_000,
		TemplateNodes:   40,
		MaxDepth:        6,
		MaxRepeat:       2,
		ZipfSkew:        1.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var docs []string
	for !g.Done() && len(docs) < 16 {
		var buf bytes.Buffer
		if err := g.WriteDocumentXML(&buf); err != nil {
			t.Fatal(err)
		}
		docs = append(docs, buf.String())
	}
	if len(docs) < 8 {
		t.Fatalf("datagen produced only %d documents", len(docs))
	}

	// The query generator draws labels from the combined collection, so
	// generated queries have matches spread over many documents.
	b := NewBuilder(nil)
	for _, d := range docs {
		if err := b.AddXMLString(d); err != nil {
			t.Fatal(err)
		}
	}
	db, err := b.Database()
	if err != nil {
		t.Fatal(err)
	}
	qg, err := querygen.New(db.Tree(), 11)
	if err != nil {
		t.Fatal(err)
	}
	w := &corpusWorld{docsXML: docs, gen: qg}
	for pi, pattern := range querygen.PaperPatterns {
		for _, renamings := range []int{0, 5} {
			gq, err := qg.Generate(pattern, renamings)
			if err != nil {
				t.Fatal(err)
			}
			w.queries = append(w.queries, corpusQuery{
				name:  fmt.Sprintf("pattern%d/renamings=%d", pi+1, renamings),
				query: gq.Query.String(),
				model: gq.Model,
			})
		}
	}
	cworld = w
	return w
}

// buildCorpus assembles the fixture documents into a corpus with the given
// shard capacity.
func buildCorpus(t *testing.T, docsXML []string, shardDocs int) *Corpus {
	t.Helper()
	cb := NewCorpusBuilder(nil)
	cb.SetShardSize(shardDocs)
	for i, d := range docsXML {
		id, err := cb.AddDocumentString(fmt.Sprintf("doc%02d.xml", i), d)
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != i {
			t.Fatalf("AddDocumentString returned DocID %d for document %d", id, i)
		}
	}
	c, err := cb.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// relHit is the shard-layout-invariant form of a hit: the document, the
// result root relative to the document's root, and the cost. A document's
// subtree encoding is identical in every layout, so equal relHit sequences
// mean bit-identical rankings.
type relHit struct {
	doc  int
	rel  NodeID
	cost Cost
}

func corpusRelHits(c *Corpus, hits []Hit) []relHit {
	out := make([]relHit, len(hits))
	for i, h := range hits {
		out[i] = relHit{doc: int(h.Doc), rel: h.Root - c.Doc(h.Doc).Root(), cost: h.Cost}
	}
	return out
}

// referenceHits computes the ground truth by brute force: every document
// evaluated alone with the direct algorithm (all results), merged under
// the global (cost, doc, rel) order.
func referenceHits(t *testing.T, docsXML []string, q corpusQuery) []relHit {
	t.Helper()
	var all []relHit
	for i, d := range docsXML {
		b := NewBuilder(nil)
		if err := b.AddXMLString(d); err != nil {
			t.Fatal(err)
		}
		db, err := b.Database()
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Search(q.query, 0, WithCostModel(q.model), WithStrategy(Direct))
		if err != nil {
			t.Fatal(err)
		}
		docRoot := db.Tree().Documents()[0]
		for _, r := range res {
			all = append(all, relHit{doc: i, rel: r.Root - docRoot, cost: r.Cost})
		}
	}
	// Merge under the global total order. The per-document results are
	// already root-ascending within one cost, so a stable sort by (cost,
	// doc) would do; sort fully for clarity.
	sortRelHits(all)
	return all
}

func sortRelHits(hits []relHit) {
	for i := 1; i < len(hits); i++ {
		for j := i; j > 0 && relLess(hits[j], hits[j-1]); j-- {
			hits[j], hits[j-1] = hits[j-1], hits[j]
		}
	}
}

func relLess(a, b relHit) bool {
	if a.cost != b.cost {
		return a.cost < b.cost
	}
	if a.doc != b.doc {
		return a.doc < b.doc
	}
	return a.rel < b.rel
}

// TestCorpusEquivalence is the corpus's central contract: for every shard
// layout (one shard, a few, one document per shard), every strategy
// (per-shard planner-resolved Auto included), and both parallelism
// settings, Search returns exactly the same ranked (doc, root, cost) top-n
// as evaluating every document independently and merging — bit-identical,
// including tie order.
func TestCorpusEquivalence(t *testing.T) {
	w := getCorpusWorld(t)
	D := len(w.docsXML)

	refs := make([][]relHit, len(w.queries))
	for qi, q := range w.queries {
		refs[qi] = referenceHits(t, w.docsXML, q)
	}

	for _, shards := range []int{1, 2, 7, D} {
		shardDocs := (D + shards - 1) / shards
		c := buildCorpus(t, w.docsXML, shardDocs)
		for qi, q := range w.queries {
			ref := refs[qi]
			for _, strategy := range []Strategy{Direct, SchemaDriven, Auto} {
				for _, par := range []int{1, 4} {
					for _, n := range []int{5, 0} {
						name := fmt.Sprintf("shards=%d/%s/%s/par=%d/n=%d",
							shards, q.name, strategy, par, n)
						hits, err := c.Search(q.query, n,
							WithCostModel(q.model), WithStrategy(strategy), WithParallelism(par))
						if err != nil {
							t.Fatalf("%s: %v", name, err)
						}
						got := corpusRelHits(c, hits)
						want := ref
						if n > 0 && n < len(want) {
							want = want[:n]
						}
						if len(got) != len(want) {
							t.Fatalf("%s: got %d hits, want %d\ngot  %v\nwant %v",
								name, len(got), len(want), got, want)
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("%s: hit %d = %+v, want %+v", name, i, got[i], want[i])
							}
						}
					}
				}
			}
		}
		c.Close()
	}
}

// TestCorpusStreamOrder verifies that Stream delivers the same globally
// ordered sequence as Search, across shard layouts.
func TestCorpusStreamOrder(t *testing.T) {
	w := getCorpusWorld(t)
	D := len(w.docsXML)
	q := w.queries[len(w.queries)-1] // pattern 3 with renamings: widest cost spread
	for _, shards := range []int{1, 3, D} {
		c := buildCorpus(t, w.docsXML, (D+shards-1)/shards)
		hits, err := c.Search(q.query, 0, WithCostModel(q.model), WithStrategy(SchemaDriven))
		if err != nil {
			t.Fatal(err)
		}
		want := corpusRelHits(c, hits)
		limit := len(want)/2 + 1
		var got []relHit
		err = c.Stream(q.query, func(h Hit) bool {
			got = append(got, relHit{doc: int(h.Doc), rel: h.Root - c.Doc(h.Doc).Root(), cost: h.Cost})
			return len(got) < limit
		}, WithCostModel(q.model))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != limit {
			t.Fatalf("shards=%d: stream stopped after %d hits, want %d", shards, len(got), limit)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: stream hit %d = %+v, Search hit %+v", shards, i, got[i], want[i])
			}
		}
		c.Close()
	}
}

// TestCorpusCutoffEffectiveness pins the scatter-gather cutoff: with
// sequential shard pickup (parallelism 1) the first shards fill the global
// top-n heap, so later shards must observe a finite bound and skip planned
// second-level queries or stop their k-growing loops early. The counters
// are summed over the generated query set — any single query may be too
// cheap to trigger the cutoff, the set is not.
func TestCorpusCutoffEffectiveness(t *testing.T) {
	w := getCorpusWorld(t)
	D := len(w.docsXML)
	c := buildCorpus(t, w.docsXML, 2) // many shards: maximal cutoff opportunity
	defer c.Close()

	var total QueryMetrics
	for _, q := range w.queries {
		var m QueryMetrics
		if _, err := c.Search(q.query, 3,
			WithCostModel(q.model), WithStrategy(SchemaDriven),
			WithParallelism(1), WithMetrics(&m)); err != nil {
			t.Fatal(err)
		}
		if m.Shards == 0 {
			t.Fatalf("%s: metrics report zero shards searched", q.name)
		}
		total.Merge(&m)
	}
	if total.Shards == 0 || total.Shards > len(w.queries)*((D+1)/2) {
		t.Fatalf("implausible shard count %d", total.Shards)
	}
	if total.BoundSkipped == 0 && total.BoundStops == 0 {
		t.Fatalf("cutoff never engaged over %d queries: %+v", len(w.queries), total)
	}
	t.Logf("cutoff over %d queries: %d second-level queries skipped, %d shard stops",
		len(w.queries), total.BoundSkipped, total.BoundStops)
}

// TestCorpusPruning verifies summary-based shard skipping: a query whose
// root label (and renamings) exists in only one shard must prune the rest,
// and still return the right hits.
func TestCorpusPruning(t *testing.T) {
	cb := NewCorpusBuilder(nil)
	cb.SetShardSize(1)
	mustAdd := func(name, doc string) {
		t.Helper()
		if _, err := cb.AddDocumentString(name, doc); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd("a.xml", `<alpha><title>one</title></alpha>`)
	mustAdd("b.xml", `<beta><title>two</title></beta>`)
	mustAdd("c.xml", `<gamma><title>three</title></gamma>`)
	c, err := cb.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var m QueryMetrics
	hits, err := c.Search(`beta[title]`, 10, WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Doc != 1 {
		t.Fatalf("hits = %+v, want one hit in doc 1", hits)
	}
	if c.Doc(hits[0].Doc).Name() != "b.xml" {
		t.Fatalf("hit names doc %q, want b.xml", c.Doc(hits[0].Doc).Name())
	}
	if m.Shards != 1 || m.ShardsPruned != 2 {
		t.Fatalf("searched %d shards, pruned %d; want 1 searched, 2 pruned", m.Shards, m.ShardsPruned)
	}

	// A renaming re-activates the shard holding the renamed label.
	model := NewCostModel()
	model.AddRenaming("beta", "gamma", Struct, 2)
	m = QueryMetrics{}
	hits, err = c.Search(`beta[title]`, 10, WithCostModel(model), WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("hits = %+v, want hits in docs 1 and 2", hits)
	}
	if hits[0].Doc != 1 || hits[1].Doc != 2 || hits[0].Cost >= hits[1].Cost {
		t.Fatalf("hits = %+v, want exact beta match first, renamed gamma second", hits)
	}
	if m.Shards != 2 || m.ShardsPruned != 1 {
		t.Fatalf("searched %d shards, pruned %d; want 2 searched, 1 pruned", m.Shards, m.ShardsPruned)
	}
}

// TestCorpusBundleRoundTrip persists a sharded corpus and reopens it: the
// manifest must be v3, DocIDs and names must survive, rankings must be
// identical, and the stored corpus must accept a cache-size budget.
func TestCorpusBundleRoundTrip(t *testing.T) {
	w := getCorpusWorld(t)
	q := w.queries[1]
	mem := buildCorpus(t, w.docsXML, 3)
	defer mem.Close()

	if err := mem.SetStoredCacheSize(64); err != ErrNotStored {
		t.Fatalf("SetStoredCacheSize on in-memory corpus = %v, want ErrNotStored", err)
	}

	path := filepath.Join(t.TempDir(), "corpus.bundle")
	if err := mem.SaveBundle(path); err != nil {
		t.Fatal(err)
	}
	stored, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stored.Close()

	if stored.NumDocs() != mem.NumDocs() || stored.NumShards() != mem.NumShards() {
		t.Fatalf("reopened corpus has %d docs in %d shards, want %d in %d",
			stored.NumDocs(), stored.NumShards(), mem.NumDocs(), mem.NumShards())
	}
	for id := 0; id < mem.NumDocs(); id++ {
		if stored.Doc(DocID(id)).Name() != mem.Doc(DocID(id)).Name() {
			t.Fatalf("doc %d name %q, want %q", id, stored.Doc(DocID(id)).Name(), mem.Doc(DocID(id)).Name())
		}
	}
	if err := stored.SetStoredCacheSize(64); err != nil {
		t.Fatalf("SetStoredCacheSize on stored corpus: %v", err)
	}

	for _, strategy := range []Strategy{Direct, SchemaDriven} {
		want, err := mem.Search(q.query, 10, WithCostModel(q.model), WithStrategy(strategy))
		if err != nil {
			t.Fatal(err)
		}
		got, err := stored.Search(q.query, 10, WithCostModel(q.model), WithStrategy(strategy))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: stored corpus returned %d hits, memory %d", strategy, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: hit %d = %+v, want %+v", strategy, i, got[i], want[i])
			}
		}
	}
}

// TestV2BundleOpensAsCorpus pins migration: a single-shard bundle written
// by the previous format (and its v1 downgrade) opens through the unified
// Open as a one-shard corpus answering identically to the Database API.
func TestV2BundleOpensAsCorpus(t *testing.T) {
	mem := buildDB(t)
	bundle := persistBundle(t, mem)

	c, err := Open(bundle, &OpenOptions{Model: PaperCostModel()})
	if err != nil {
		t.Fatalf("Open(v2 bundle): %v", err)
	}
	defer c.Close()
	if c.NumShards() != 1 {
		t.Fatalf("v2 bundle opened with %d shards, want 1", c.NumShards())
	}
	if c.NumDocs() != len(mem.Tree().Documents()) {
		t.Fatalf("v2 bundle corpus has %d docs, want %d", c.NumDocs(), len(mem.Tree().Documents()))
	}

	model := PaperCostModel()
	for _, query := range []string{
		`cd[title["concerto"]]`,
		`cd[title["piano"] and composer]`,
	} {
		res, err := mem.Search(query, 10, WithCostModel(model))
		if err != nil {
			t.Fatal(err)
		}
		hits, err := c.Search(query, 10, WithCostModel(model))
		if err != nil {
			t.Fatal(err)
		}
		if len(hits) != len(res) {
			t.Fatalf("%s: corpus returned %d hits, database %d", query, len(hits), len(res))
		}
		for i := range hits {
			if hits[i].Root != res[i].Root || hits[i].Cost != res[i].Cost {
				t.Fatalf("%s: hit %d = %+v, database result %+v", query, i, hits[i], res[i])
			}
		}
	}
}

// TestCorpusExplain sanity-checks the cross-shard plan merge: the cheapest
// plan of an exact-match query must cover every unpruned shard that holds
// the label, cost 0 first.
func TestCorpusExplain(t *testing.T) {
	w := getCorpusWorld(t)
	q := w.queries[1] // pattern 1 with renamings: plans several cost tiers
	c := buildCorpus(t, w.docsXML, 4)
	defer c.Close()
	plans, err := c.Explain(q.query, 5, WithCostModel(q.model))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no plans")
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Cost < plans[i-1].Cost {
			t.Fatalf("plans out of cost order: %+v", plans)
		}
	}
	for _, p := range plans {
		if p.Shards < 1 || p.Shards > c.NumShards() {
			t.Fatalf("plan %q claims %d shards of %d", p.Rendered, p.Shards, c.NumShards())
		}
		if strings.Contains(p.Rendered, "@") {
			t.Fatalf("plan %q leaks shard-local class identifiers", p.Rendered)
		}
	}
}
