GO ?= go

.PHONY: all vet build test race check bench

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive tests (parallel secondary execution, shared
# caches, cross-goroutine searches) under the race detector.
race:
	$(GO) test -race ./... -run 'Concurrent|Parallel'

check: vet build test race

bench:
	$(GO) test -bench=. -benchmem ./...
