GO ?= go

.PHONY: all vet build test race race-full fmt-check staticcheck vuln smoke smoke-cluster check bench bench-backends bench-eval bench-corpus bench-serve bench-serve-smoke bench-smoke bench-smoke-baseline planner-smoke fuzz-smoke

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive tests (parallel secondary execution, shared
# caches, cross-goroutine searches, the query server) under the race
# detector — the fast subset for local iteration; CI runs race-full.
race:
	$(GO) test -race ./... -run 'Concurrent|Parallel|Serve|Server|Saturation|Drain'

# The full test suite under the race detector.
race-full:
	$(GO) test -race ./...

# Fail when any file is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# Requires staticcheck on PATH (CI installs it; locally:
# go install honnef.co/go/tools/cmd/staticcheck@latest).
staticcheck:
	staticcheck ./...

# Requires govulncheck on PATH (CI installs it; locally:
# go install golang.org/x/vuln/cmd/govulncheck@latest).
vuln:
	govulncheck ./...

# End-to-end smoke test: generate, index, serve, query over HTTP.
smoke:
	./scripts/smoke.sh

# Cluster smoke test (docs/CLUSTER.md): three shard nodes behind a
# gatherer, ranking parity with single-process serving, and partial
# degradation when a node is killed.
smoke-cluster:
	./scripts/smoke_cluster.sh

check: vet build test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Figure 7 series over both posting backends; each run appends an entry to
# BENCH_backends.json. The third leg serves the stored indexes from memory
# mappings with the posting cache disabled, pinning the raw storage path.
bench-backends:
	$(GO) run ./cmd/axqlbench -scale 0.01 -queries 5 -backend memory -json BENCH_backends.json
	$(GO) run ./cmd/axqlbench -scale 0.01 -queries 5 -backend stored -json BENCH_backends.json
	$(GO) run ./cmd/axqlbench -scale 0.01 -queries 5 -backend stored -mmap -cache -1 -json BENCH_backends.json

# Direct-evaluation time/allocation suite (docs/PERFORMANCE.md); each run
# appends entries to BENCH_eval.json: the memory backend at 0.1 scale, then
# the stored backend cold (posting cache disabled) through the pager and
# through memory mappings — the two storage configurations the fetch-suite
# rows compare.
bench-eval:
	$(GO) run ./cmd/axqlbench -suite eval -scale 0.1 -json BENCH_eval.json
	$(GO) run ./cmd/axqlbench -suite eval -scale 0.05 -backend stored -cache -1 -json BENCH_eval.json
	$(GO) run ./cmd/axqlbench -suite eval -scale 0.05 -backend stored -cache -1 -mmap -json BENCH_eval.json

# Sharded-corpus scatter-gather suite (docs/CORPUS.md): shard-count and
# fan-out parallelism sweep; each run appends an entry to BENCH_corpus.json.
bench-corpus:
	$(GO) run ./cmd/axqlbench -suite corpus -scale 0.05 -json BENCH_corpus.json

# Serving load harness (docs/LOADTEST.md): a 3×3 open-loop (arrival rate ×
# admission bound) sweep at 0.1 scale, then a single full-scale cell; each
# run appends an entry to BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/axqlbench -suite serve -scale 0.1 -queries 5 \
	    -rates 50,200,800 -inflight 2,8,-1 -duration 2s -mix all \
	    -json BENCH_serve.json
	$(GO) run ./cmd/axqlbench -suite serve -scale 1 -queries 5 \
	    -rates 100 -inflight 0 -duration 3s -mix paper \
	    -json BENCH_serve.json

# CI gate for the load harness: one tiny open-loop and one closed-loop cell
# must produce non-zero throughput with no 5xx or transport errors, plus the
# same matrix through a two-node in-process cluster with no partials. The
# run JSON goes under bench-artifacts/ (uncommitted) for CI to upload.
bench-serve-smoke:
	mkdir -p bench-artifacts
	$(GO) run ./cmd/axqlbench -suite serve -scale 0.01 -queries 3 \
	    -rates 40,0 -inflight 0 -duration 1s -check \
	    -json bench-artifacts/BENCH_serve_smoke.json
	$(GO) run ./cmd/axqlbench -suite serve -scale 0.01 -queries 3 \
	    -rates 40,0 -inflight 0 -duration 1s -check -cluster-nodes 2 \
	    -json bench-artifacts/BENCH_serve_smoke.json

# Short fuzz passes over the corpus-bundle manifest reader and the B+tree
# subtree-counter maintenance; longer local runs: go test -fuzz <target>
# in the respective package.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzCorpusManifest -fuzztime 30s ./internal/backend/
	$(GO) test -run xxx -fuzz FuzzCounters -fuzztime 30s ./internal/storage/

# CI gate for the query planner (docs/PLANNER.md): on every paper-pattern
# point the Auto pick must stay under twice the best forced strategy.
planner-smoke:
	$(GO) run ./cmd/axqlbench -suite eval -scale 0.01 -plannercheck

# Fast benchmark pass for CI: a fixed small iteration count proves the
# benchmarks still compile and run, and the eval leg doubles as a regression
# gate — the run must stay within 1.3x of the latest committed same-scale
# BENCH_eval.json entry on time (points over 200µs) and allocations on every
# paper point. After an intentional performance change, refresh the baseline
# with bench-smoke-baseline and commit the updated BENCH_eval.json.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 100x -benchmem ./internal/eval/ ./internal/index/
	$(GO) run ./cmd/axqlbench -suite eval -scale 0.002 -regress BENCH_eval.json
	$(GO) run ./cmd/axqlbench -suite corpus -scale 0.005

# Record a fresh bench-smoke baseline entry in BENCH_eval.json for the
# bench-smoke regression gate to compare against.
bench-smoke-baseline:
	$(GO) run ./cmd/axqlbench -suite eval -scale 0.002 -json BENCH_eval.json
