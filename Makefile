GO ?= go

.PHONY: all vet build test race check bench bench-backends

all: check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive tests (parallel secondary execution, shared
# caches, cross-goroutine searches) under the race detector.
race:
	$(GO) test -race ./... -run 'Concurrent|Parallel'

check: vet build test race

bench:
	$(GO) test -bench=. -benchmem ./...

# Figure 7 series over both posting backends; each run appends an entry to
# BENCH_backends.json.
bench-backends:
	$(GO) run ./cmd/axqlbench -scale 0.01 -queries 5 -backend memory -json BENCH_backends.json
	$(GO) run ./cmd/axqlbench -scale 0.01 -queries 5 -backend stored -json BENCH_backends.json
