package approxql

import (
	"context"
	"iter"

	"approxql/internal/exec"
)

// Results returns a pull-based iterator over the ranked results of an
// approXQL query, in ascending cost order. It is the range-over-func
// companion of Stream: results are produced lazily by the incremental
// schema-driven engine, so breaking out of the loop early stops the
// evaluation after the current second-level query — no further rounds are
// planned and no further secondary fetches happen.
//
//	for r, err := range db.Results(`cd[title["concerto"]]`, approxql.WithCostModel(model)) {
//		if err != nil {
//			return err
//		}
//		fmt.Println(db.Path(r.Root), r.Cost)
//	}
//
// Errors (a syntax error in the query, a failing secondary-index read) are
// yielded as the final pair with a zero Result; a nil error accompanies
// every real result.
func (db *Database) Results(query string, opts ...QueryOption) iter.Seq2[Result, error] {
	return db.ResultsContext(context.Background(), query, opts...)
}

// ResultsContext is Results with cancellation: when the context fires
// mid-iteration, the iterator yields ctx.Err() and stops.
func (db *Database) ResultsContext(ctx context.Context, query string, opts ...QueryOption) iter.Seq2[Result, error] {
	return func(yield func(Result, error) bool) {
		c := db.config(opts)
		if c.initialK <= 0 {
			c.initialK = 8
		}
		x, err := parseExpand(query, &c)
		if err != nil {
			yield(Result{}, err)
			return
		}
		stopped := false
		err = db.engine(c, 0).Run(ctx, x, func(it exec.Item) bool {
			if !yield(Result{Root: it.Root, Cost: it.Cost}, nil) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil && !stopped {
			yield(Result{}, err)
		}
	}
}
