// Command axqlindex builds an approXQL collection file from XML documents
// and optionally persists the label postings and the path-dependent
// secondary index into the embedded B+tree store (the Berkeley DB role of
// the paper's system).
//
//	axqlindex -out catalog.axdb catalog1.xml catalog2.xml
//	axqlindex -out catalog.axdb -postings catalog.idx -secondary catalog.sec catalog.xml
package main

import (
	"fmt"
	"os"

	"approxql/internal/cli"
)

func main() {
	if err := cli.Index(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "axqlindex:", err)
		os.Exit(1)
	}
}
