// Command axqlquerygen reproduces the paper's query generator (Section
// 8.1): it fills the three query patterns with names and terms randomly
// selected from a collection's indexes and writes, for every query, an
// .axq file with the query and a .costs file with the delete costs and
// renamings of its selectors.
//
//	axqlindex -out data.axdb data.xml
//	axqlquerygen -db data.axdb -out queries/
//	axql -db data.axdb -costs queries/pattern1_r05_q00.costs "$(cat queries/pattern1_r05_q00.axq)"
package main

import (
	"fmt"
	"os"

	"approxql/internal/cli"
)

func main() {
	if err := cli.QueryGen(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "axqlquerygen:", err)
		os.Exit(1)
	}
}
