// Command axql runs approXQL queries against an XML collection and prints
// the ranked results.
//
//	axql -xml catalog.xml 'cd[title["piano" and "concerto"]]'
//	axql -db catalog.axdb -costs costs.txt -n 5 -render 'cd[title["concerto"]]'
//	axql -xml catalog.xml -explain 'cd[title["concerto"]]'
//
// Cost files use the textual format of approxql.ParseCostModel:
//
//	delete struct track 3
//	rename struct cd mc 4
//	rename text concerto sonata 3
package main

import (
	"fmt"
	"os"

	"approxql/internal/cli"
)

func main() {
	if err := cli.Query(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "axql:", err)
		os.Exit(1)
	}
}
