// Command axqlgen generates synthetic XML collections with the generator of
// Aboulnaga et al. (WebDB'01) that the paper's experiments use (Section 8.1):
// configurable element count, element-name pool, vocabulary, total word
// occurrences, and a Zipfian term distribution.
//
// Examples:
//
//	axqlgen -out collection.xml                  # laptop-scale defaults
//	axqlgen -paper -out paper.xml                # the paper's 1M-element collection
//	axqlgen -paper -scale 0.01 -out small.xml    # 1% of the paper's collection
package main

import (
	"fmt"
	"os"

	"approxql/internal/cli"
)

func main() {
	if err := cli.Gen(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "axqlgen:", err)
		os.Exit(1)
	}
}
