// Command axqlbench regenerates the experiments of the paper's Section 8:
// the evaluation-time series of Figure 7(a) (simple path query), 7(b)
// (small Boolean query), and 7(c) (large Boolean query), comparing the
// schema-driven and the direct best-n algorithms over a synthetic collection
// with 0, 5, and 10 renamings per query label.
//
//	axqlbench                      # all three panels at 5% of the paper's scale
//	axqlbench -figure 7a           # one panel
//	axqlbench -scale 1             # the paper's full 1M-element collection
//
// Beyond the paper's tables, -suite selects further harnesses: eval
// (time/allocation suite), corpus (sharded scatter-gather sweep), and serve
// — the HTTP serving load harness (docs/LOADTEST.md) with open-loop arrival
// rates, closed-loop concurrency sweeps, and query-log record/replay:
//
//	axqlbench -suite serve -rates 50,200,800 -inflight 2,8,-1   # scenario matrix
//	axqlbench -suite serve -target http://host:8080 -replay q.jsonl
package main

import (
	"fmt"
	"os"

	"approxql/internal/cli"
)

func main() {
	if err := cli.Bench(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "axqlbench:", err)
		os.Exit(1)
	}
}
