// Command axqlserve serves approXQL queries over HTTP from one shared
// database: an in-memory collection built from XML, a collection file, or a
// bundle of persisted indexes built by axqlindex.
//
//	axqlserve -xml catalog.xml -addr :8080
//	axqlserve -db catalog.bundle -max-inflight 64 -timeout 5s
//
// Endpoints: POST /query, GET /healthz, GET /metrics (Prometheus text
// format), GET /debug/pprof. See docs/SERVER.md for the full reference.
package main

import (
	"fmt"
	"os"

	"approxql/internal/cli"
)

func main() {
	if err := cli.Serve(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "axqlserve:", err)
		os.Exit(1)
	}
}
