// Command axqlserve serves approXQL queries over HTTP from one shared
// database: an in-memory collection built from XML, a collection file, or a
// bundle of persisted indexes built by axqlindex.
//
//	axqlserve -xml catalog.xml -addr :8080
//	axqlserve -db catalog.bundle -max-inflight 64 -timeout 5s
//
// It also serves corpus bundles distributed across processes: -shard-node
// exposes the cluster wire protocol over a slice of a bundle (-shards),
// and -nodes turns the process into a gatherer merging remote shard
// nodes' streams into one exact global ranking:
//
//	axqlserve -db c.bundle -shard-node -shards 0,3 -addr :8081
//	axqlserve -nodes http://h1:8081,http://h2:8082 -addr :8080
//
// Endpoints: POST /query, GET /healthz, GET /metrics (Prometheus text
// format), GET /debug/pprof; shard nodes add POST /shard/query,
// POST /shard/bound, and GET /shard/stats. See docs/SERVER.md and
// docs/CLUSTER.md for the full reference.
package main

import (
	"fmt"
	"os"

	"approxql/internal/cli"
)

func main() {
	if err := cli.Serve(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "axqlserve:", err)
		os.Exit(1)
	}
}
