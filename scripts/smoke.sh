#!/usr/bin/env bash
# End-to-end smoke test: generate a synthetic collection, persist it as a
# bundle, serve it with axqlserve, and exercise the HTTP surface — the CI
# guard that the binaries compose into a working service.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    # CI sets SMOKE_LOG_DIR to keep the server logs as workflow artifacts.
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR"
        cp "$workdir"/*.log "$SMOKE_LOG_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "smoke: FAIL: $1" >&2
    [ -f "$workdir/server.log" ] && sed 's/^/smoke: server: /' "$workdir/server.log" >&2
    exit 1
}

echo "smoke: building binaries"
go build -o "$workdir" ./cmd/axqlgen ./cmd/axqlindex ./cmd/axqlserve ./cmd/axql ./cmd/axqlbench

echo "smoke: generating a small collection"
"$workdir/axqlgen" -seed 7 -elements 2000 -words 8000 -names 20 -vocab 200 \
    -out "$workdir/data.xml" -q

# Pick the most frequent element name so the smoke query is guaranteed to
# have matches regardless of generator internals.
name=$(grep -o '<n[0-9]*' "$workdir/data.xml" | sort | uniq -c | sort -rn |
    head -1 | tr -d ' <' | sed 's/^[0-9]*//')
[ -n "$name" ] || fail "no element names found in generated data"
echo "smoke: querying for element <$name>"

echo "smoke: indexing into a bundle (with -mmap verification reopen)"
"$workdir/axqlindex" -out "$workdir/c.axdb" -postings "$workdir/c.postings" \
    -secondary "$workdir/c.sec" -mmap -q "$workdir/data.xml"
[ -f "$workdir/c.axdb.bundle" ] || fail "bundle manifest not written"

echo "smoke: starting axqlserve over the bundle"
"$workdir/axqlserve" -db "$workdir/c.axdb.bundle" -addr 127.0.0.1:0 -log text \
    >/dev/null 2>"$workdir/server.log" &
server_pid=$!

base=""
for _ in $(seq 1 100); do
    if addr=$(grep -o 'listening on [^ ]*' "$workdir/server.log" 2>/dev/null | head -1); then
        base="http://${addr#listening on }"
        break
    fi
    kill -0 "$server_pid" 2>/dev/null || fail "server exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "server never reported its address"

echo "smoke: checking /healthz"
health=$(curl -sSf "$base/healthz")
echo "$health" | grep -q '"status":"ok"' || fail "unexpected /healthz body: $health"

echo "smoke: querying /query"
body="{\"query\":\"$name\",\"n\":5}"
response=$(curl -sSf -X POST -H 'Content-Type: application/json' -d "$body" "$base/query")
echo "$response" | grep -q '"rank":1' || fail "no ranked results in: $response"
echo "$response" | grep -q '"cost":' || fail "no costs in: $response"
echo "$response" | grep -q '"cached":false' || fail "first query claimed cached: $response"

echo "smoke: repeating the query to hit the result cache"
response=$(curl -sSf -X POST -H 'Content-Type: application/json' -d "$body" "$base/query")
echo "$response" | grep -q '"cached":true' || fail "repeat query missed the cache: $response"

echo "smoke: checking /metrics"
metrics=$(curl -sSf "$base/metrics")
echo "$metrics" | grep -Eq 'axql_result_cache_hits_total [1-9]' ||
    fail "no cache hits reported in /metrics"
echo "$metrics" | grep -q 'axql_requests_total{endpoint="/query",code="200"} 2' ||
    fail "request counters wrong in /metrics"

echo "smoke: malformed query returns 400 with a position"
status=$(curl -s -o "$workdir/err.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d '{"query":"a[b[","n":5}' "$base/query")
[ "$status" = "400" ] || fail "malformed query returned $status"
grep -q '"position"' "$workdir/err.json" || fail "400 body lacks parser position"

echo "smoke: graceful shutdown on SIGTERM"
kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
    fail "server still running 10s after SIGTERM"
fi
wait "$server_pid" || fail "server exited non-zero"
server_pid=""
grep -q 'shutting down' "$workdir/server.log" || fail "no drain message logged"

# --- mmap: the same bundle served from memory mappings ----------------------

echo "smoke: mmap: query parity between pager and mmap reads"
"$workdir/axql" -db "$workdir/c.axdb.bundle" -n 5 "$name" >"$workdir/pager.out" ||
    fail "axql over the bundle (pager) failed"
"$workdir/axql" -db "$workdir/c.axdb.bundle" -n 5 -mmap "$name" >"$workdir/mmap.out" ||
    fail "axql over the bundle (-mmap) failed"
cmp -s "$workdir/pager.out" "$workdir/mmap.out" ||
    fail "mmap ranking differs from pager ranking: $(diff "$workdir/pager.out" "$workdir/mmap.out" | head -5)"

echo "smoke: mmap: serving the bundle with -mmap"
: >"$workdir/server.log"
"$workdir/axqlserve" -db "$workdir/c.axdb.bundle" -addr 127.0.0.1:0 -log text -mmap \
    >/dev/null 2>"$workdir/server.log" &
server_pid=$!

base=""
for _ in $(seq 1 100); do
    if addr=$(grep -o 'listening on [^ ]*' "$workdir/server.log" 2>/dev/null | head -1); then
        base="http://${addr#listening on }"
        break
    fi
    kill -0 "$server_pid" 2>/dev/null || fail "mmap server exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "mmap server never reported its address"

response=$(curl -sSf -X POST -H 'Content-Type: application/json' -d "$body" "$base/query")
echo "$response" | grep -q '"rank":1' || fail "no ranked results from the mmap server: $response"

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
wait "$server_pid" || fail "mmap server exited non-zero"
server_pid=""

# --- multi-document corpus: index with -shard-docs, query, serve -----------

echo "smoke: corpus: generating three documents"
for i in 1 2 3; do
    "$workdir/axqlgen" -seed $((i + 20)) -elements 800 -words 3000 -names 20 \
        -vocab 200 -out "$workdir/doc$i.xml" -q
done

echo "smoke: corpus: indexing with -shard-docs"
"$workdir/axqlindex" -out "$workdir/corpus.axql" -shard-docs 1 -q \
    "$workdir/doc1.xml" "$workdir/doc2.xml" "$workdir/doc3.xml"
[ -f "$workdir/corpus.axql" ] || fail "corpus bundle not written"
head -1 "$workdir/corpus.axql" | grep -q 'axql-bundle v5' ||
    fail "corpus bundle is not a v5 manifest"

cname=$(grep -o '<n[0-9]*' "$workdir/doc1.xml" | sort | uniq -c | sort -rn |
    head -1 | tr -d ' <' | sed 's/^[0-9]*//')
[ -n "$cname" ] || fail "no element names found in corpus data"

echo "smoke: corpus: querying <$cname> via axql"
"$workdir/axql" -db "$workdir/corpus.axql" -n 3 "$cname" >"$workdir/corpus.out" ||
    fail "axql over corpus bundle failed"
grep -q 'doc1.xml' "$workdir/corpus.out" ||
    fail "corpus ranking lacks document names: $(cat "$workdir/corpus.out")"

echo "smoke: corpus: starting axqlserve over the corpus bundle (with -record)"
: >"$workdir/server.log"
"$workdir/axqlserve" -db "$workdir/corpus.axql" -addr 127.0.0.1:0 -log text \
    -record "$workdir/server_queries.jsonl" \
    >/dev/null 2>"$workdir/server.log" &
server_pid=$!

base=""
for _ in $(seq 1 100); do
    if addr=$(grep -o 'listening on [^ ]*' "$workdir/server.log" 2>/dev/null | head -1); then
        base="http://${addr#listening on }"
        break
    fi
    kill -0 "$server_pid" 2>/dev/null || fail "corpus server exited during startup"
    sleep 0.1
done
[ -n "$base" ] || fail "corpus server never reported its address"

echo "smoke: corpus: checking /healthz shape"
health=$(curl -sSf "$base/healthz")
echo "$health" | grep -q '"docs":3' || fail "healthz docs wrong: $health"
echo "$health" | grep -q '"shards":3' || fail "healthz shards wrong: $health"

echo "smoke: corpus: querying /query for document fields"
body="{\"query\":\"$cname\",\"n\":5}"
response=$(curl -sSf -X POST -H 'Content-Type: application/json' -d "$body" "$base/query")
echo "$response" | grep -q '"rank":1' || fail "no ranked corpus results in: $response"
echo "$response" | grep -q '"doc_name":' || fail "no document names in: $response"

# --- load harness: replay a recorded stream against the live server --------

echo "smoke: load: replaying a query-log stream against the live server"
{
    printf '{"at_ms":0,"query":"%s","n":3}\n' "$cname"
    printf '{"at_ms":50,"query":"%s","n":3}\n' "$cname"
    printf '{"at_ms":100,"query":"%s[%s]","n":2,"strategy":"auto"}\n' "$cname" "$cname"
    printf '{"at_ms":150,"query":"%s","n":5}\n' "$cname"
} >"$workdir/replay.jsonl"
"$workdir/axqlbench" -suite serve -target "$base" -replay "$workdir/replay.jsonl" \
    -check >"$workdir/load.out" 2>&1 || fail "load replay failed: $(cat "$workdir/load.out")"
grep -q 'replay of 4 requests' "$workdir/load.out" ||
    fail "load harness did not replay 4 requests: $(cat "$workdir/load.out")"

echo "smoke: load: server recorded the replayed arrivals"
# The curl query above plus the 4 replayed ones: at least 5 log lines.
[ -f "$workdir/server_queries.jsonl" ] || fail "server query log not written"
lines=$(wc -l <"$workdir/server_queries.jsonl")
[ "$lines" -ge 5 ] || fail "server query log has $lines lines, want >= 5"
grep -q '"at_ms"' "$workdir/server_queries.jsonl" || fail "query log lacks at_ms offsets"
grep -q "\"$cname\"" "$workdir/server_queries.jsonl" || fail "query log lacks the smoke query"

kill -TERM "$server_pid"
for _ in $(seq 1 100); do
    kill -0 "$server_pid" 2>/dev/null || break
    sleep 0.1
done
wait "$server_pid" || fail "corpus server exited non-zero"
server_pid=""

echo "smoke: OK"
