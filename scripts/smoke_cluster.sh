#!/usr/bin/env bash
# Cluster smoke test: index a corpus bundle, serve its shards from three
# shard-node processes behind a gatherer, and check the distributed ranking
# is identical to single-process serving — then kill a node and check the
# gatherer degrades to a well-formed partial answer instead of failing.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]}"; do
        kill -9 "$pid" 2>/dev/null || true
    done
    # CI sets SMOKE_LOG_DIR to keep the server logs as workflow artifacts.
    if [ -n "${SMOKE_LOG_DIR:-}" ]; then
        mkdir -p "$SMOKE_LOG_DIR"
        cp "$workdir"/*.log "$SMOKE_LOG_DIR"/ 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() {
    echo "smoke-cluster: FAIL: $1" >&2
    for log in "$workdir"/*.log; do
        [ -f "$log" ] && sed "s|^|smoke-cluster: $(basename "$log"): |" "$log" >&2
    done
    exit 1
}

# wait_ready LOGFILE PID — block until the server logs its address, echo the
# base URL.
wait_ready() {
    local log=$1 pid=$2 addr=""
    for _ in $(seq 1 100); do
        if addr=$(grep -o 'listening on [^ ]*' "$log" 2>/dev/null | head -1); then
            echo "http://${addr#listening on }"
            return 0
        fi
        kill -0 "$pid" 2>/dev/null || return 1
        sleep 0.1
    done
    return 1
}

# rank_tuples RESPONSE — normalize a /query body to "doc root cost" lines,
# the exact-ranking signature parity is asserted on.
rank_tuples() {
    paste -d' ' \
        <(grep -o '"doc":[0-9]*' <<<"$1" | cut -d: -f2) \
        <(grep -o '"root":[0-9]*' <<<"$1" | cut -d: -f2) \
        <(grep -o '"cost":[0-9]*' <<<"$1" | cut -d: -f2)
}

query() { # query BASE BODY
    curl -sSf -X POST -H 'Content-Type: application/json' -d "$2" "$1/query"
}

echo "smoke-cluster: building binaries"
go build -o "$workdir" ./cmd/axqlgen ./cmd/axqlindex ./cmd/axqlserve

echo "smoke-cluster: generating six documents"
docs=()
for i in 1 2 3 4 5 6; do
    "$workdir/axqlgen" -seed $((i + 30)) -elements 800 -words 3000 -names 20 \
        -vocab 200 -out "$workdir/doc$i.xml" -q
    docs+=("$workdir/doc$i.xml")
done

name=$(grep -o '<n[0-9]*' "$workdir/doc1.xml" | sort | uniq -c | sort -rn |
    head -1 | tr -d ' <' | sed 's/^[0-9]*//')
[ -n "$name" ] || fail "no element names found in generated data"
echo "smoke-cluster: querying for element <$name>"

echo "smoke-cluster: indexing into a six-shard corpus bundle"
"$workdir/axqlindex" -out "$workdir/corpus.axql" -shard-docs 1 -q "${docs[@]}"
[ -f "$workdir/corpus.axql" ] || fail "corpus bundle not written"

echo "smoke-cluster: starting the single-process reference server"
"$workdir/axqlserve" -db "$workdir/corpus.axql" -addr 127.0.0.1:0 -log off \
    >/dev/null 2>"$workdir/ref.log" &
disown
pids+=($!)
ref=$(wait_ready "$workdir/ref.log" $!) || fail "reference server never came up"

echo "smoke-cluster: starting three shard nodes"
node_urls=()
node_pids=()
i=0
for shards in 0,3 1,4 2,5; do
    i=$((i + 1))
    "$workdir/axqlserve" -db "$workdir/corpus.axql" -shard-node -shards "$shards" \
        -addr 127.0.0.1:0 -log off >/dev/null 2>"$workdir/node$i.log" &
    disown
    pid=$!
    pids+=("$pid")
    node_pids+=("$pid")
    url=$(wait_ready "$workdir/node$i.log" "$pid") || fail "shard node $i never came up"
    node_urls+=("$url")
done

echo "smoke-cluster: checking /shard/stats on node 1"
stats=$(curl -sSf "${node_urls[0]}/shard/stats")
grep -q '"shards":2' <<<"$stats" || fail "node 1 stats wrong: $stats"

echo "smoke-cluster: starting the gatherer"
nodes_flag=$(IFS=,; echo "${node_urls[*]}")
# Not disowned: the drain check at the end waits on this job.
"$workdir/axqlserve" -nodes "$nodes_flag" -addr 127.0.0.1:0 -log off \
    >/dev/null 2>"$workdir/gatherer.log" &
gatherer_pid=$!
pids+=("$gatherer_pid")
gatherer=$(wait_ready "$workdir/gatherer.log" "$gatherer_pid") ||
    fail "gatherer never came up"

echo "smoke-cluster: gatherer /healthz aggregates the cluster"
health=$(curl -sSf "$gatherer/healthz")
grep -q '"status":"ok"' <<<"$health" || fail "gatherer not healthy: $health"
grep -q '"docs":6' <<<"$health" || fail "gatherer healthz docs wrong: $health"
grep -q '"cluster_nodes"' <<<"$health" || fail "no nodes section in: $health"

echo "smoke-cluster: ranking parity with single-process serving"
for body in "{\"query\":\"$name\",\"n\":5}" "{\"query\":\"$name\",\"n\":50}"; do
    want=$(query "$ref" "$body") || fail "reference query failed"
    got=$(query "$gatherer" "$body") || fail "gather query failed"
    grep -q '"partial":true' <<<"$got" && fail "healthy cluster answered partial: $got"
    grep -q '"rank":1' <<<"$got" || fail "no ranked results in: $got"
    if [ "$(rank_tuples "$want")" != "$(rank_tuples "$got")" ]; then
        fail "ranking mismatch for $body
ref:    $(rank_tuples "$want" | tr '\n' ';')
gather: $(rank_tuples "$got" | tr '\n' ';')"
    fi
done

echo "smoke-cluster: gatherer /metrics exposes per-node counters"
metrics=$(curl -sSf "$gatherer/metrics")
grep -q 'axql_cluster_node_requests_total' <<<"$metrics" ||
    fail "no per-node counters in gatherer /metrics"

echo "smoke-cluster: killing shard node 3 (SIGKILL)"
kill -9 "${node_pids[2]}"
for _ in $(seq 1 50); do
    kill -0 "${node_pids[2]}" 2>/dev/null || break
    sleep 0.1
done

echo "smoke-cluster: degraded gather answers partial, not 5xx"
# A fresh query shape so the result cannot come from the gatherer's cache.
body="{\"query\":\"$name[$name]\",\"n\":5}"
status=$(curl -s -o "$workdir/partial.json" -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d "$body" "$gatherer/query")
[ "$status" = "200" ] || fail "query with a dead node returned $status: $(cat "$workdir/partial.json")"
grep -q '"partial":true' "$workdir/partial.json" ||
    fail "degraded answer not marked partial: $(cat "$workdir/partial.json")"
grep -q '"error":' "$workdir/partial.json" ||
    fail "no per-node error detail: $(cat "$workdir/partial.json")"

echo "smoke-cluster: degraded gatherer /healthz reports it"
health=$(curl -sSf "$gatherer/healthz")
grep -q '"status":"degraded"' <<<"$health" || fail "healthz not degraded: $health"
grep -q '"unreachable"' <<<"$health" || fail "dead node not flagged: $health"

echo "smoke-cluster: a fail-closed gatherer refuses instead"
"$workdir/axqlserve" -nodes "$nodes_flag" -fail-closed -node-retries 0 \
    -addr 127.0.0.1:0 -log off >/dev/null 2>"$workdir/failclosed.log" &
disown
pids+=($!)
strict=$(wait_ready "$workdir/failclosed.log" $!) || fail "fail-closed gatherer never came up"
status=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
    -H 'Content-Type: application/json' -d "$body" "$strict/query")
[ "$status" = "502" ] || fail "fail-closed query returned $status, want 502"

echo "smoke-cluster: graceful shutdown on SIGTERM"
kill -TERM "$gatherer_pid"
for _ in $(seq 1 100); do
    kill -0 "$gatherer_pid" 2>/dev/null || break
    sleep 0.1
done
kill -0 "$gatherer_pid" 2>/dev/null && fail "gatherer still running 10s after SIGTERM"
wait "$gatherer_pid" || fail "gatherer exited non-zero"

echo "smoke-cluster: OK"
