package approxql

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestResultsIteratorMatchesSearch(t *testing.T) {
	db := buildDB(t)
	model := PaperCostModel()
	query := `cd[title["concerto"]]`

	want, err := db.Search(query, 0, WithCostModel(model), WithStrategy(SchemaDriven))
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	for r, err := range db.Results(query, WithCostModel(model), WithStrategy(SchemaDriven)) {
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, r)
	}
	// Search sorts its top-n window by (cost, root); the iterator emits in
	// engine order, ascending in cost. The sets must agree.
	byCost := func(rs []Result) map[Result]bool {
		m := make(map[Result]bool, len(rs))
		for _, r := range rs {
			m[r] = true
		}
		return m
	}
	if !reflect.DeepEqual(byCost(got), byCost(want)) {
		t.Fatalf("iterator results %v, Search results %v", got, want)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Cost < got[i-1].Cost {
			t.Fatalf("iterator emitted out of cost order: %v", got)
		}
	}
}

func TestResultsIteratorBreakEarly(t *testing.T) {
	db := buildDB(t)
	seen := 0
	for _, err := range db.Results(`cd[title["concerto"]]`, WithCostModel(PaperCostModel())) {
		if err != nil {
			t.Fatal(err)
		}
		seen++
		break
	}
	if seen != 1 {
		t.Fatalf("saw %d results after break", seen)
	}
}

func TestResultsIteratorYieldsParseError(t *testing.T) {
	db := buildDB(t)
	var last error
	n := 0
	for _, err := range db.Results(`cd[[[`) {
		n++
		last = err
	}
	if n != 1 || last == nil {
		t.Fatalf("malformed query yielded %d pairs, final err %v", n, last)
	}
}

func TestResultsIteratorYieldsContextError(t *testing.T) {
	db := buildDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var last error
	for _, err := range db.ResultsContext(ctx, `cd[title["concerto"]]`, WithCostModel(PaperCostModel())) {
		last = err
	}
	if !errors.Is(last, context.Canceled) {
		t.Fatalf("final error = %v, want context.Canceled", last)
	}
}

func TestSearchContextCancelled(t *testing.T) {
	db := buildDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, strategy := range []Strategy{Direct, SchemaDriven} {
		_, err := db.SearchContext(ctx, `cd[title["concerto"]]`, 0,
			WithCostModel(PaperCostModel()), WithStrategy(strategy))
		if !errors.Is(err, context.Canceled) {
			t.Errorf("strategy %v: err = %v, want context.Canceled", strategy, err)
		}
	}
}

func TestStreamParallelEarlyStop(t *testing.T) {
	db := buildDB(t)
	model := PaperCostModel()
	var all []Result
	err := db.Stream(`cd[title["concerto" or "sonata"]]`, func(r Result) bool {
		all = append(all, r)
		return true
	}, WithCostModel(model), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 2 {
		t.Skipf("workload too small: %d results", len(all))
	}
	var got []Result
	err = db.Stream(`cd[title["concerto" or "sonata"]]`, func(r Result) bool {
		got = append(got, r)
		return len(got) < 2
	}, WithCostModel(model), WithParallelism(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("callback saw %d results after stopping at 2", len(got))
	}
	if !reflect.DeepEqual(got, all[:2]) {
		t.Fatalf("early-stopped prefix %v, full run prefix %v", got, all[:2])
	}
}

func TestSearchParallelMetricsPopulated(t *testing.T) {
	db := buildDB(t)
	var m QueryMetrics
	res, err := db.Search(`cd[title["concerto"]]`, 0,
		WithCostModel(PaperCostModel()), WithStrategy(SchemaDriven),
		WithParallelism(4), WithMetrics(&m))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if m.Rounds == 0 || m.Executed == 0 || m.ResultsEmitted == 0 {
		t.Fatalf("metrics not populated: %+v", m)
	}
	if m.Parallelism != 4 {
		t.Fatalf("Parallelism = %d, want 4", m.Parallelism)
	}
	if m.ParseTime <= 0 || m.PlanTime <= 0 {
		t.Fatalf("stage timings not recorded: parse %v plan %v", m.ParseTime, m.PlanTime)
	}
}
