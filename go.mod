module approxql

go 1.22
