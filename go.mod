module approxql

go 1.23
