package approxql

import (
	"bytes"
	"reflect"
	"sort"
	"strings"
	"testing"
)

const catalogXML = `
<catalog>
  <cd>
    <title>Piano Concerto</title>
    <composer>Rachmaninov</composer>
  </cd>
  <cd>
    <tracks><track><title>Piano Sonata</title></track></tracks>
  </cd>
  <mc>
    <title>Concerto</title>
  </mc>
</catalog>`

func buildDB(t *testing.T) *Database {
	t.Helper()
	b := NewBuilder(PaperCostModel())
	if err := b.AddXMLString(catalogXML); err != nil {
		t.Fatal(err)
	}
	db, err := b.Database()
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSearchDirectAndSchemaAgree(t *testing.T) {
	db := buildDB(t)
	model := PaperCostModel()
	for _, query := range []string{
		`cd[title["concerto"]]`,
		`cd[title["piano" and "concerto"]]`,
		`cd[title["concerto" or "sonata"]]`,
	} {
		direct, err := db.Search(query, 0, WithCostModel(model), WithStrategy(Direct))
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		viaSchema, err := db.Search(query, 0, WithCostModel(model), WithStrategy(SchemaDriven))
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		if !reflect.DeepEqual(direct, viaSchema) {
			t.Errorf("%s:\ndirect: %v\nschema: %v", query, direct, viaSchema)
		}
	}
}

func TestSearchRanksByCost(t *testing.T) {
	db := buildDB(t)
	res, err := db.Search(`cd[title["concerto"]]`, 0, WithCostModel(PaperCostModel()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	if res[0].Cost != 0 || res[1].Cost != 4 || res[2].Cost != 5 {
		t.Errorf("costs = %d,%d,%d; want 0,4,5", res[0].Cost, res[1].Cost, res[2].Cost)
	}
	if db.Label(res[0].Root) != "cd" {
		t.Errorf("best result labeled %q", db.Label(res[0].Root))
	}
	// Exact-only semantics without a cost model.
	exact, err := db.Search(`cd[title["concerto"]]`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(exact) != 1 || exact[0].Cost != 0 {
		t.Errorf("exact results = %v", exact)
	}
}

func TestSearchN(t *testing.T) {
	db := buildDB(t)
	res, err := db.Search(`cd[title["concerto"]]`, 2, WithCostModel(PaperCostModel()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].Cost != 0 || res[1].Cost != 4 {
		t.Errorf("BestN(2) = %v", res)
	}
}

func TestSearchSyntaxError(t *testing.T) {
	db := buildDB(t)
	if _, err := db.Search(`cd[`, 5); err == nil {
		t.Error("syntax error not reported")
	}
	if _, err := Parse(`cd[`); err == nil {
		t.Error("Parse accepted a broken query")
	}
	if s, err := Parse(`cd [ title [ "Piano" ] ]`); err != nil || s != `cd[title["piano"]]` {
		t.Errorf("Parse canonical form = %q, %v", s, err)
	}
}

func TestRenderAndPath(t *testing.T) {
	db := buildDB(t)
	res, err := db.Search(`mc[title["concerto"]]`, 1)
	if err != nil || len(res) != 1 {
		t.Fatalf("res = %v, %v", res, err)
	}
	rendered := db.Render(res[0].Root)
	if rendered == "" || db.Path(res[0].Root) != "<root>/catalog/mc" {
		t.Errorf("Render = %q, Path = %q", rendered, db.Path(res[0].Root))
	}
}

func TestStreamDeliversInCostOrder(t *testing.T) {
	db := buildDB(t)
	var costs []Cost
	err := db.Stream(`cd[title["concerto"]]`, func(r Result) bool {
		costs = append(costs, r.Cost)
		return true
	}, WithCostModel(PaperCostModel()))
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != 3 {
		t.Fatalf("streamed %d results, want 3", len(costs))
	}
	if !sort.SliceIsSorted(costs, func(i, j int) bool { return costs[i] < costs[j] }) {
		t.Errorf("stream out of order: %v", costs)
	}
	// Early stop.
	n := 0
	err = db.Stream(`cd[title["concerto"]]`, func(r Result) bool {
		n++
		return false
	}, WithCostModel(PaperCostModel()))
	if err != nil || n != 1 {
		t.Errorf("early stop streamed %d, err %v", n, err)
	}
}

func TestExplain(t *testing.T) {
	db := buildDB(t)
	plans, err := db.Explain(`cd[title["concerto"]]`, 5, WithCostModel(PaperCostModel()))
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) == 0 {
		t.Fatal("no second-level queries")
	}
	if plans[0].Cost != 0 || plans[0].Results != 1 {
		t.Errorf("best plan = %+v", plans[0])
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].Cost < plans[i-1].Cost {
			t.Errorf("plans unsorted at %d", i)
		}
	}
}

func TestDatabaseSerializationRoundTrip(t *testing.T) {
	db := buildDB(t)
	var buf bytes.Buffer
	if _, err := db.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := ReadDatabase(bytes.NewReader(buf.Bytes()), PaperCostModel())
	if err != nil {
		t.Fatal(err)
	}
	want, _ := db.Search(`cd[title["concerto"]]`, 0, WithCostModel(PaperCostModel()))
	got, err := db2.Search(`cd[title["concerto"]]`, 0, WithCostModel(PaperCostModel()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("after round trip: %v, want %v", got, want)
	}
}

func TestAutoStrategy(t *testing.T) {
	db := buildDB(t)
	model := PaperCostModel()
	// Auto must give the same answers either way.
	bounded, err := db.Search(`cd[title["concerto"]]`, 2, WithCostModel(model))
	if err != nil {
		t.Fatal(err)
	}
	all, err := db.Search(`cd[title["concerto"]]`, 0, WithCostModel(model))
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) != 2 || len(all) != 3 {
		t.Errorf("bounded = %v, all = %v", bounded, all)
	}
	if Auto.String() != "auto" || Direct.String() != "direct" || SchemaDriven.String() != "schema" {
		t.Error("Strategy.String misbehaves")
	}
}

func TestSearchExplained(t *testing.T) {
	db := buildDB(t)
	res, err := db.SearchExplained(`cd[title["concerto"]]`, 0, WithCostModel(PaperCostModel()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("explained results = %v", res)
	}
	// The cheapest result must be the exact plan over cd.
	if res[0].Cost != 0 || !strings.HasPrefix(res[0].Plan, "cd@") {
		t.Errorf("best = %+v", res[0])
	}
	// Costs ascend and every result carries a plan.
	for i, r := range res {
		if r.Plan == "" {
			t.Errorf("result %d without plan", i)
		}
		if i > 0 && r.Cost < res[i-1].Cost {
			t.Errorf("explained results unsorted at %d", i)
		}
	}
	// The mc result's plan must mention the renamed root.
	foundMC := false
	for _, r := range res {
		if db.Label(r.Root) == "mc" && strings.HasPrefix(r.Plan, "mc@") {
			foundMC = true
		}
	}
	if !foundMC {
		t.Errorf("no mc plan among %v", res)
	}
	// Result sets agree with Search.
	plain, err := db.Search(`cd[title["concerto"]]`, 0, WithCostModel(PaperCostModel()))
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != len(res) {
		t.Errorf("Search found %d, SearchExplained %d", len(plain), len(res))
	}
	// n bounds the output.
	two, err := db.SearchExplained(`cd[title["concerto"]]`, 2, WithCostModel(PaperCostModel()))
	if err != nil || len(two) != 2 {
		t.Errorf("SearchExplained(2) = %v, %v", two, err)
	}
}

func TestBuilderErrorsPropagate(t *testing.T) {
	b := NewBuilder(nil)
	if err := b.AddXMLString(`<broken`); err == nil {
		t.Fatal("broken XML accepted")
	}
	if _, err := b.Database(); err == nil {
		t.Fatal("Database succeeded after a parse error")
	}
	if err := b.AddXMLFile("/nonexistent/file.xml"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestSchemaAccessors(t *testing.T) {
	db := buildDB(t)
	sch := db.Schema()
	if sch == nil || sch.Len() == 0 {
		t.Fatal("schema missing")
	}
	if db.Schema() != sch {
		t.Error("schema rebuilt on second access")
	}
	if db.Len() != db.Tree().Len() {
		t.Error("Len mismatch")
	}
	if db.Index() == nil {
		t.Error("Index is nil")
	}
}

func TestMatchDetails(t *testing.T) {
	db := buildDB(t)
	model := PaperCostModel()
	query := `cd[title["concerto"]]`
	res, err := db.Search(query, 0, WithCostModel(model))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		steps, total, err := db.MatchDetails(query, r.Root, WithCostModel(model))
		if err != nil {
			t.Fatalf("MatchDetails(%d): %v", r.Root, err)
		}
		if total != r.Cost {
			t.Errorf("MatchDetails cost %d, Search cost %d", total, r.Cost)
		}
		if len(steps) != 3 { // cd, title, concerto
			t.Errorf("steps = %v", steps)
		}
	}
	// The mc result must report the root as renamed.
	var mcRoot NodeID = -1
	for _, r := range res {
		if db.Label(r.Root) == "mc" {
			mcRoot = r.Root
		}
	}
	steps, _, err := db.MatchDetails(query, mcRoot, WithCostModel(model))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range steps {
		if s.QueryLabel == "cd" && s.Action == "renamed" && s.MatchedLabel == "mc" {
			found = true
		}
	}
	if !found {
		t.Errorf("mc root not reported as renamed: %v", steps)
	}
	// A non-result root fails.
	if _, _, err := db.MatchDetails(query, 0, WithCostModel(model)); err == nil {
		t.Error("MatchDetails at the super-root succeeded")
	}
}

func TestFingerprint(t *testing.T) {
	fp := func(q string) string {
		t.Helper()
		f, err := Fingerprint(q)
		if err != nil {
			t.Fatalf("Fingerprint(%q): %v", q, err)
		}
		return f
	}
	// Spelling variants of one canonical parse tree share a fingerprint.
	base := fp(`cd[title["piano" and "concerto"]]`)
	for _, variant := range []string{
		`cd[ title[ "piano" and "concerto" ] ]`,
		`cd[title[("piano" and "concerto")]]`,
		`cd[title["piano concerto"]]`,
	} {
		if got := fp(variant); got != base {
			t.Errorf("Fingerprint(%q) = %s, want %s", variant, got, base)
		}
	}
	// Different trees get different fingerprints.
	for _, other := range []string{
		`cd[title["piano" or "concerto"]]`,
		`cd[title["piano"]]`,
		`mc[title["piano" and "concerto"]]`,
	} {
		if got := fp(other); got == base {
			t.Errorf("Fingerprint(%q) collides with the base query", other)
		}
	}
	// Malformed queries fail instead of fingerprinting garbage.
	if _, err := Fingerprint(`cd[`); err == nil {
		t.Error("Fingerprint accepted a malformed query")
	}
}
