package approxql

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentSearches exercises the documented concurrency contract: a
// Database serves concurrent searches (including the lazily built schema)
// without coordination by the caller. Run with -race.
func TestConcurrentSearches(t *testing.T) {
	db := buildDB(t)
	model := PaperCostModel()
	queries := []string{
		`cd[title["concerto"]]`,
		`cd[title["piano" and "concerto"]]`,
		`cd[title["concerto" or "sonata"]]`,
		`mc[title["concerto"]]`,
	}
	want := make(map[string][]Result)
	for _, q := range queries {
		res, err := db.Search(q, 0, WithCostModel(model))
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				q := queries[(g+i)%len(queries)]
				strategy := Direct
				if (g+i)%2 == 0 {
					strategy = SchemaDriven
				}
				res, err := db.Search(q, 0, WithCostModel(model), WithStrategy(strategy))
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res, want[q]) {
					errs <- &mismatchError{q}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type mismatchError struct{ q string }

func (e *mismatchError) Error() string { return "concurrent result mismatch for " + e.q }
