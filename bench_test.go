package approxql_test

// The benchmarks regenerate the paper's evaluation (Section 8, Figure 7)
// as testing.B benches:
//
//   - BenchmarkFigure7a — simple path query  (pattern 1)
//   - BenchmarkFigure7b — small Boolean query (pattern 2)
//   - BenchmarkFigure7c — large Boolean query (pattern 3)
//
// Each panel sweeps renamings/label ∈ {0, 5, 10} and n ∈ {1, 10, 100, 1000,
// ∞} for both algorithms ("schema" = Section 7, "direct" = Section 6); the
// series shapes correspond to the paper's diagrams. The collection defaults
// to 1% of the paper's 1M elements / 10M words; set APPROXQL_BENCH_SCALE to
// change it (1.0 reproduces the paper's collection and needs several GB of
// memory).
//
// The ablation benches cover the design choices called out in DESIGN.md:
// dynamic programming on/off, initial-k sensitivity of the incremental
// algorithm, and in-memory vs. B+tree-backed postings.
//
// Run everything with:
//
//	go test -bench=. -benchmem
import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"approxql/internal/bench"
	"approxql/internal/eval"
	"approxql/internal/exec"
	"approxql/internal/index"
	"approxql/internal/kbest"
	"approxql/internal/lang"
	"approxql/internal/querygen"
	"approxql/internal/schema"
	"approxql/internal/storage"
	"approxql/internal/xmltree"
)

var benchState struct {
	once   sync.Once
	runner *bench.Runner
	err    error
}

func benchScale() float64 {
	if s := os.Getenv("APPROXQL_BENCH_SCALE"); s != "" {
		if f, err := strconv.ParseFloat(s, 64); err == nil && f > 0 {
			return f
		}
	}
	return 0.01
}

func benchRunner(b *testing.B) *bench.Runner {
	b.Helper()
	benchState.once.Do(func() {
		benchState.runner, benchState.err = bench.NewRunner(bench.Default(benchScale()))
	})
	if benchState.err != nil {
		b.Fatal(benchState.err)
	}
	return benchState.runner
}

// benchFigure7 runs one panel: every (renamings, n, algorithm) series point
// becomes a sub-benchmark whose time is the mean evaluation time over the
// pattern's query set — the quantity Figure 7 plots.
func benchFigure7(b *testing.B, pattern string) {
	r := benchRunner(b)
	for _, renamings := range []int{0, 5, 10} {
		for _, n := range []int{1, 10, 100, 1000, bench.AllN} {
			for _, algo := range []bench.Algo{bench.Schema, bench.Direct} {
				name := fmt.Sprintf("renamings=%d/n=%s/algo=%s", renamings, bench.FormatN(n), algo)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						m, err := r.Measure(pattern, renamings, n, algo)
						if err != nil {
							b.Fatal(err)
						}
						if i == 0 {
							b.ReportMetric(m.MeanResults, "results/query")
							b.ReportMetric(float64(m.MeanTime.Nanoseconds()), "ns/query")
						}
					}
				})
			}
		}
	}
}

// BenchmarkFigure7a reproduces Figure 7(a): the simple path query
// name[name[name[term]]]. Expected shape: schema beats direct at every n,
// including n = ∞ (second-level path queries always have embeddings and the
// secondary postings are short).
func BenchmarkFigure7a(b *testing.B) { benchFigure7(b, "pattern1") }

// BenchmarkFigure7b reproduces Figure 7(b): the small Boolean query
// name[name[term and (term or term)]]. Expected shape: schema wins for
// small n; direct catches up as n approaches all results.
func BenchmarkFigure7b(b *testing.B) { benchFigure7(b, "pattern2") }

// BenchmarkFigure7c reproduces Figure 7(c): the large Boolean query of the
// Section 8.1 table. Expected shape: like 7(b) but with higher absolute
// times, degrading further with 10 renamings per label.
func BenchmarkFigure7c(b *testing.B) { benchFigure7(b, "pattern3") }

// BenchmarkDirectEval measures algorithm primary end to end — the direct
// strategy's hot path — with a fresh Evaluator per iteration, as production
// queries run it. It sweeps the paper patterns and the evaluator's
// Parallelism knob; allocs/op is the headline number the allocation
// discipline work targets (see docs/PERFORMANCE.md and BENCH_eval.json).
func BenchmarkDirectEval(b *testing.B) {
	r := benchRunner(b)
	qg, err := querygen.New(r.Tree(), 2002)
	if err != nil {
		b.Fatal(err)
	}
	for _, pi := range []int{0, 2} {
		pattern := querygen.PaperPatterns[pi]
		g, err := qg.Generate(pattern, 5)
		if err != nil {
			b.Fatal(err)
		}
		x := lang.Expand(g.Query, g.Model)
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", pattern.Name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					ev := eval.New(r.Tree(), r.Backend())
					ev.Parallelism = workers
					if _, err := ev.BestN(x, 10); err != nil {
						b.Fatal(err)
					}
					ev.Release()
				}
			})
		}
	}
}

// --- Ablations -------------------------------------------------------------

// benchWorkload returns a fixed mid-size workload for the ablations.
func benchWorkload(b *testing.B, renamings int) (*xmltree.Tree, *querygen.Generated) {
	b.Helper()
	r := benchRunner(b)
	qg, err := querygen.New(r.Tree(), 99)
	if err != nil {
		b.Fatal(err)
	}
	g, err := qg.Generate(querygen.PaperPatterns[2], renamings)
	if err != nil {
		b.Fatal(err)
	}
	return r.Tree(), g
}

// BenchmarkAblationDP measures the effect of the dynamic programming
// (memoized subquery evaluation) in algorithm primary on the large Boolean
// pattern with renamings, where deletion bridges share subtrees.
func BenchmarkAblationDP(b *testing.B) {
	tree, g := benchWorkload(b, 5)
	ix := index.Build(tree)
	x := lang.Expand(g.Query, g.Model)
	for _, disable := range []bool{false, true} {
		name := "memo=on"
		if disable {
			name = "memo=off"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ev := eval.New(tree, ix)
				ev.DisableMemo = disable
				if _, err := ev.BestN(x, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInitialK measures the sensitivity of the incremental
// algorithm to the initial guess of k (Section 7.4: "a good initial guess
// of k is crucial"): too small forces extra rounds, too large wastes work
// on second-level queries that are never needed.
func BenchmarkAblationInitialK(b *testing.B) {
	tree, g := benchWorkload(b, 5)
	sch := schema.Build(tree)
	x := lang.Expand(g.Query, g.Model)
	const n = 10
	for _, k0 := range []int{1, 5, 10, 50, 200} {
		b.Run(fmt.Sprintf("initialK=%d", k0), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := kbest.BestN(sch, x, n, kbest.Options{InitialK: k0, MaxK: 1 << 16}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationStorage compares direct evaluation over in-memory
// postings with evaluation over postings served from the embedded B+tree
// store (the Berkeley DB role).
func BenchmarkAblationStorage(b *testing.B) {
	tree, g := benchWorkload(b, 0)
	mem := index.Build(tree)
	x := lang.Expand(g.Query, g.Model)

	db, err := storage.Open("", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := index.Save(mem, db); err != nil {
		b.Fatal(err)
	}
	stored := index.OpenStored(db)

	b.Run("postings=memory", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eval.New(tree, mem).BestN(x, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("postings=btree", func(b *testing.B) {
		// stored has no cache attached, so every fetch reads the store.
		for i := 0; i < b.N; i++ {
			if _, err := eval.New(tree, stored).BestN(x, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// latencySec charges a fixed access latency per I_sec posting fetch, on top
// of real reads from the embedded B+tree store. This models the paper's
// system, where I_sec is disk-resident (Berkeley DB) and every posting read
// pays a seek: the charge here (250µs) is a small fraction of a 2002 disk
// seek. Overlapping that latency is what the secondary worker pool buys —
// it is the dimension BenchmarkParallelSecondary sweeps.
type latencySec struct {
	sec     schema.SecSource
	latency time.Duration
}

func (l latencySec) SecInstances(c schema.NodeID) ([]xmltree.NodeID, error) {
	time.Sleep(l.latency)
	return l.sec.SecInstances(c)
}

func (l latencySec) SecTermInstances(c schema.NodeID, term string) ([]xmltree.NodeID, error) {
	time.Sleep(l.latency)
	return l.sec.SecTermInstances(c, term)
}

// BenchmarkParallelSecondary compares sequential (one worker) with parallel
// execution of a round's second-level queries over a store-backed secondary
// index with realistic access latency. The large Boolean pattern with 10
// renamings/label plans many distinct second-level queries per round, whose
// independent I_sec fetches the pool overlaps; with workers=1 the same
// fetches are paid strictly in sequence.
func BenchmarkParallelSecondary(b *testing.B) {
	r := benchRunner(b)
	qg, err := querygen.New(r.Tree(), 99)
	if err != nil {
		b.Fatal(err)
	}
	g, err := qg.Generate(querygen.PaperPatterns[2], 10)
	if err != nil {
		b.Fatal(err)
	}
	sch := r.Schema()
	x := lang.Expand(g.Query, g.Model)

	db, err := storage.Open("", nil)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	if err := sch.SaveSec(db); err != nil {
		b.Fatal(err)
	}
	// stored has no cache attached: every fetch reads the store and pays
	// the modeled seek.
	stored := schema.OpenStoredSec(db)
	sec := latencySec{sec: stored, latency: 250 * time.Microsecond}

	const n = 10
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var m exec.Metrics
				count := 0
				eng := exec.New(sch, sec, exec.Config{N: n, Parallelism: workers, Metrics: &m})
				err := eng.Run(context.Background(), x, func(exec.Item) bool {
					count++
					return count < n
				})
				if err != nil {
					b.Fatal(err)
				}
				if count < n {
					b.Fatalf("found %d results, want %d", count, n)
				}
				if i == 0 {
					b.ReportMetric(float64(m.ExecTime.Nanoseconds()), "secondary-ns")
					b.ReportMetric(float64(m.SecondaryFetches), "fetches")
				}
			}
		})
	}
}

// BenchmarkIndexBuild and BenchmarkSchemaBuild measure offline costs.
func BenchmarkIndexBuild(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		index.Build(r.Tree())
	}
}

func BenchmarkSchemaBuild(b *testing.B) {
	r := benchRunner(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		schema.Build(r.Tree())
	}
}
