package approxql

import (
	"testing"

	"approxql/internal/datagen"
	"approxql/internal/querygen"
)

// TestAutoMatchesPlannedStrategy pins the planner's central contract: an
// Auto search is bit-identical to forcing the strategy the planner reports
// for the same (query, n), on both backends, and the attached metrics name
// that strategy.
func TestAutoMatchesPlannedStrategy(t *testing.T) {
	cfg := datagen.Config{
		Seed: 17, NumElementNames: 20, VocabularySize: 400,
		TargetElements: 3000, TargetWords: 10000,
		TemplateNodes: 60, MaxDepth: 6, MaxRepeat: 3, ZipfSkew: 1.3,
	}
	tree, err := datagen.GenerateTree(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	mem := newDatabase(tree)
	stored, err := OpenBundle(persistBundle(t, mem), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer stored.Close()

	qg, err := querygen.New(mem.Tree(), 3)
	if err != nil {
		t.Fatal(err)
	}
	sawDirect, sawSchema := false, false
	for _, p := range querygen.PaperPatterns {
		for _, ren := range []int{0, 5} {
			set, err := qg.GenerateSet(p, ren, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range set {
				query := g.Query.String()
				for _, n := range []int{0, 3, 10000} {
					for _, db := range []*Database{mem, stored} {
						p, err := db.Plan(query, n, WithCostModel(g.Model))
						if err != nil {
							t.Fatal(err)
						}
						if p.Strategy != Direct && p.Strategy != SchemaDriven {
							t.Fatalf("%s n=%d: planner picked %v", query, n, p.Strategy)
						}
						if n <= 0 && p.Strategy != Direct {
							t.Fatalf("%s n=%d: all-results query planned as %v", query, n, p.Strategy)
						}
						var m QueryMetrics
						auto, err := db.Search(query, n,
							WithCostModel(g.Model), WithMetrics(&m))
						if err != nil {
							t.Fatal(err)
						}
						forced, err := db.Search(query, n,
							WithCostModel(g.Model), WithStrategy(p.Strategy))
						if err != nil {
							t.Fatal(err)
						}
						if !sameResults(auto, forced) {
							t.Fatalf("%s n=%d: auto %v vs planned %v (%v)",
								query, n, auto, forced, p.Strategy)
						}
						if m.PlannerStrategy != p.Strategy.String() {
							t.Fatalf("%s n=%d: metrics name %q, Plan picked %v",
								query, n, m.PlannerStrategy, p.Strategy)
						}
						if m.PlannerDirect+m.PlannerSchema != 1 {
							t.Fatalf("%s n=%d: planner shard counters %d/%d",
								query, n, m.PlannerDirect, m.PlannerSchema)
						}
						switch p.Strategy {
						case Direct:
							sawDirect = true
						case SchemaDriven:
							sawSchema = true
						}
					}
				}
			}
		}
	}
	// The n sweep must exercise both sides of the crossover, or the test
	// proves nothing about one of them.
	if !sawDirect || !sawSchema {
		t.Fatalf("crossover not exercised: direct=%v schema=%v", sawDirect, sawSchema)
	}
}

// BenchmarkPlannerCrossover compares Auto against both forced strategies at
// the two ends of the paper's Figure 7 n sweep: a small result bound (the
// schema-driven end) and all results (the direct end). Auto should track the
// winning forced strategy at each end, paying only the planner's count
// probes on top.
func BenchmarkPlannerCrossover(b *testing.B) {
	cfg := datagen.Config{
		Seed: 17, NumElementNames: 20, VocabularySize: 400,
		TargetElements: 10000, TargetWords: 30000,
		TemplateNodes: 60, MaxDepth: 6, MaxRepeat: 3, ZipfSkew: 1.3,
	}
	tree, err := datagen.GenerateTree(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	db := newDatabase(tree)
	qg, err := querygen.New(tree, 3)
	if err != nil {
		b.Fatal(err)
	}
	set, err := qg.GenerateSet(querygen.PaperPatterns[0], 2, 4)
	if err != nil {
		b.Fatal(err)
	}

	ends := []struct {
		name string
		n    int
	}{
		{"n=5", 5},
		{"n=all", 0},
	}
	strategies := []struct {
		name string
		opts []QueryOption
	}{
		{"auto", nil},
		{"direct", []QueryOption{WithStrategy(Direct)}},
		{"schema", []QueryOption{WithStrategy(SchemaDriven)}},
	}
	for _, end := range ends {
		for _, st := range strategies {
			b.Run(end.name+"/"+st.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					g := set[i%len(set)]
					opts := append([]QueryOption{WithCostModel(g.Model)}, st.opts...)
					if _, err := db.Search(g.Query.String(), end.n, opts...); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
