package approxql

import (
	"os"
	"strings"
	"testing"

	"approxql/internal/index"
	"approxql/internal/storage"
)

// downgradeStore rewrites every posting in a B+tree store from the current
// codec to an older posting format (encode EncodePostingV1 for flat varint,
// EncodePostingV2 for blocked varint), producing a store byte-compatible
// with earlier writers. Both index stores hold nothing but encoded
// postings, so the rewrite is key-agnostic.
func downgradeStore(t *testing.T, path string, encode func([]NodeID) []byte) {
	t.Helper()
	db, err := storage.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	type kv struct{ k, v []byte }
	var all []kv
	err = db.Scan(nil, func(key, value []byte) bool {
		all = append(all, kv{append([]byte(nil), key...), append([]byte(nil), value...)})
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatalf("store %s is empty", path)
	}
	for _, p := range all {
		post, err := index.DecodePosting(p.v)
		if err != nil {
			t.Fatalf("store %s key %q holds a non-posting value: %v", path, p.k, err)
		}
		if err := db.Put(p.k, encode(post)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestV1BundleStillOpens pins backward compatibility: a bundle written by a
// pre-v2 version — "axql-bundle v1" manifest and flat-varint postings in
// both stores — must still open and answer queries identically to the
// in-memory database.
func TestV1BundleStillOpens(t *testing.T) {
	mem := buildDB(t)
	bundle := persistBundle(t, mem)

	manifest, err := os.ReadFile(bundle)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(manifest), "\n", 2)
	if lines[0] != "axql-bundle v5" {
		t.Fatalf("fresh bundle manifest starts with %q, want axql-bundle v5", lines[0])
	}
	if err := os.WriteFile(bundle, []byte("axql-bundle v1\n"+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	downgradeStore(t, strings.TrimSuffix(bundle, ".bundle")+".post", index.EncodePostingV1)
	downgradeStore(t, strings.TrimSuffix(bundle, ".bundle")+".sec", index.EncodePostingV1)

	assertBundleMatchesMemory(t, mem, bundle, "v1")
}

// TestV4BundleStillOpens pins the previous generation: a v4 manifest over
// blocked-varint (v2 codec) postings must keep opening and answering
// identically now that fresh bundles write v5 manifests with group-varint
// postings and front-coded dictionaries.
func TestV4BundleStillOpens(t *testing.T) {
	mem := buildDB(t)
	bundle := persistBundle(t, mem)

	manifest, err := os.ReadFile(bundle)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitN(string(manifest), "\n", 2)
	if err := os.WriteFile(bundle, []byte("axql-bundle v4\n"+lines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	downgradeStore(t, strings.TrimSuffix(bundle, ".bundle")+".post", index.EncodePostingV2)
	downgradeStore(t, strings.TrimSuffix(bundle, ".bundle")+".sec", index.EncodePostingV2)

	assertBundleMatchesMemory(t, mem, bundle, "v4")
}

// assertBundleMatchesMemory opens a (possibly downgraded) bundle and checks
// both strategies rank identically to the in-memory database.
func assertBundleMatchesMemory(t *testing.T, mem *Database, bundle, label string) {
	t.Helper()
	stored, err := OpenBundle(bundle, PaperCostModel())
	if err != nil {
		t.Fatalf("opening %s bundle: %v", label, err)
	}
	defer stored.Close()

	model := PaperCostModel()
	for _, query := range []string{
		`cd[title["concerto"]]`,
		`cd[title["piano" and "concerto"]]`,
		`cd[title["concerto" or "sonata"]]`,
		`mc[title["concerto"]]`,
	} {
		want, err := mem.Search(query, 0, WithCostModel(model))
		if err != nil {
			t.Fatal(err)
		}
		for _, strategy := range []Strategy{Direct, SchemaDriven} {
			got, err := stored.Search(query, 0, WithCostModel(model), WithStrategy(strategy))
			if err != nil {
				t.Fatalf("%s (%v) on %s bundle: %v", query, strategy, label, err)
			}
			if !sameResults(want, got) {
				t.Errorf("%s (%v): %s bundle returned %v, memory %v", query, strategy, label, got, want)
			}
		}
	}
}
