package approxql

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"approxql/internal/backend"
	"approxql/internal/cost"
	"approxql/internal/costgen"
	"approxql/internal/eval"
	"approxql/internal/exec"
	"approxql/internal/kbest"
	"approxql/internal/lang"
	"approxql/internal/plan"
)

// Strategy selects the best-n evaluation algorithm.
type Strategy int

const (
	// Auto lets the planner pick: it estimates the approximate-result
	// count from schema statistics and count-only index probes and
	// resolves to SchemaDriven when the requested n is small relative to
	// the estimate, Direct otherwise — the paper's Figure 7 crossover
	// applied per query (and, for a corpus, per shard). See
	// internal/plan and docs/PLANNER.md.
	Auto Strategy = iota
	// Direct computes all approximate results with algorithm primary
	// against the data indexes, sorts, and prunes (Section 6).
	Direct
	// SchemaDriven generates the best k second-level queries against the
	// schema and executes them incrementally (Section 7).
	SchemaDriven
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Direct:
		return "direct"
	case SchemaDriven:
		return "schema"
	default:
		return "auto"
	}
}

// QueryMetrics records per-stage counters and timings of one schema-driven
// evaluation: parse/expand/plan/exec time, rounds and their k values,
// second-level queries planned vs. deduped vs. executed, index fetch
// counts, and results emitted. Attach one with WithMetrics.
type QueryMetrics = exec.Metrics

type queryConfig struct {
	model    *CostModel
	strategy Strategy
	initialK int
	delta    int
	growth   int
	maxK     int
	parallel int
	metrics  *QueryMetrics
}

// QueryOption configures Search, Stream, Results, and Explain.
type QueryOption func(*queryConfig)

// WithCostModel supplies the transformation costs for this query. Without
// it, only insertions are allowed (exact containment semantics with
// context-specificity ranking).
func WithCostModel(m *CostModel) QueryOption {
	return func(c *queryConfig) { c.model = m }
}

// WithStrategy forces an evaluation strategy.
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) { c.strategy = s }
}

// WithInitialK overrides the schema-driven algorithm's initial guess for
// the number of second-level queries (Section 7.4: "a good initial guess of
// k is crucial").
func WithInitialK(k int) QueryOption {
	return func(c *queryConfig) { c.initialK = k }
}

// WithDelta overrides the increment applied to k when the first k
// second-level queries yield too few results.
func WithDelta(d int) QueryOption {
	return func(c *queryConfig) { c.delta = d }
}

// WithGrowth overrides the factor applied to the increment after every
// round (the default 2 keeps the number of rounds logarithmic; 1 grows k by
// a constant δ per round, the literal policy of the paper's Figure 6).
func WithGrowth(g int) QueryOption {
	return func(c *queryConfig) { c.growth = g }
}

// WithMaxK bounds the schema-driven search: it stops once k reaches the
// bound even if fewer results were found. Without it the bound is derived
// from the schema — the maximum number of distinct second-level queries the
// plan can generate, past which growing k is provably useless.
func WithMaxK(k int) QueryOption {
	return func(c *queryConfig) { c.maxK = k }
}

// WithParallelism sets the worker-pool size for query evaluation: the
// schema-driven strategy fans second-level queries out over the pool, and
// the direct strategy evaluates independent expanded-query subtrees
// concurrently. The default (0) uses GOMAXPROCS; 1 executes sequentially.
// Results are identical at any setting: the engine releases each query's
// results in plan order, and the direct evaluator's combine order is fixed.
func WithParallelism(n int) QueryOption {
	return func(c *queryConfig) { c.parallel = n }
}

// WithMetrics attaches a metrics sink filled during evaluation — the
// EXPLAIN-ANALYZE view of a query. Pass a zero QueryMetrics per query; a
// reused struct accumulates across queries.
func WithMetrics(m *QueryMetrics) QueryOption {
	return func(c *queryConfig) { c.metrics = m }
}

func (db *Database) config(opts []QueryOption) queryConfig {
	c := queryConfig{model: cost.NewModel()}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Parse checks an approXQL query without executing it and returns its
// canonical form.
func Parse(query string) (string, error) {
	q, err := lang.Parse(query)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

// parseExpand parses and expands a query, recording stage timings when a
// metrics sink is attached.
func parseExpand(query string, c *queryConfig) (*lang.Expanded, error) {
	t0 := time.Now()
	q, err := lang.Parse(query)
	if err != nil {
		return nil, err
	}
	if c.metrics != nil {
		c.metrics.ParseTime += time.Since(t0)
	}
	t0 = time.Now()
	x := lang.Expand(q, c.model)
	if c.metrics != nil {
		c.metrics.ExpandTime += time.Since(t0)
	}
	return x, nil
}

// engine builds the incremental execution engine for one query — the single
// execution path of the schema-driven strategy. The engine plans against
// the schema and executes against the database's backend, so the same loop
// runs over in-memory and stored I_sec postings.
func (db *Database) engine(c queryConfig, n int) *exec.Engine {
	return exec.New(db.Schema(), db.be, exec.Config{
		N:           n,
		InitialK:    c.initialK,
		Delta:       c.delta,
		Growth:      c.growth,
		MaxK:        c.maxK,
		Parallelism: c.parallel,
		Metrics:     c.metrics,
	})
}

// resolveAuto runs the planner for one query, records the decision in the
// attached metrics, and adopts the planner's k/δ schedule for options the
// caller left unset.
func (db *Database) resolveAuto(c *queryConfig, x *lang.Expanded, n int) Strategy {
	cs, _ := db.be.(backend.CountSource)
	d := plan.Decide(db.Schema(), cs, x, n)
	if c.metrics != nil {
		c.metrics.PlannerStrategy = d.Strategy.String()
		c.metrics.PlannerEstimate = d.Estimate
		c.metrics.PlannerProbes = d.Probes
	}
	if d.Strategy == plan.Direct {
		if c.metrics != nil {
			c.metrics.PlannerDirect++
		}
		return Direct
	}
	if c.metrics != nil {
		c.metrics.PlannerSchema++
	}
	if c.initialK <= 0 {
		c.initialK = d.InitialK
	}
	if c.delta <= 0 {
		c.delta = d.Delta
	}
	if c.growth <= 0 {
		c.growth = d.Growth
	}
	return SchemaDriven
}

// PlanDecision reports how the planner resolves Auto for one query: the
// strategy it picks, the approximate-result-count estimate R̂ that drove the
// choice, and — when the pick is SchemaDriven — the k/δ growth schedule the
// engine starts from. For a corpus the planner decides per shard;
// DirectShards/SchemaShards give the split, Estimate sums the per-shard
// estimates, and Strategy is the majority pick.
type PlanDecision struct {
	// Strategy is the planner's pick: Direct or SchemaDriven.
	Strategy Strategy
	// Estimate is R̂, the planner's upper-bound estimate of the
	// approximate-result count.
	Estimate int
	// PlanSpace bounds the number of distinct second-level queries the
	// schema can generate for this query (the k termination bound).
	PlanSpace int
	// Probes counts the count-only index probes the estimate issued.
	Probes int
	// InitialK, Delta, and Growth are the schema-driven schedule (zero
	// when Strategy is Direct).
	InitialK int
	Delta    int
	Growth   int
	// DirectShards and SchemaShards count the shards routed to each
	// strategy (1/0 or 0/1 for a single database).
	DirectShards int
	SchemaShards int
}

// Plan runs only the planner for a query: the strategy Auto would resolve
// to, without executing anything beyond count-only index probes. It is the
// introspection surface behind axql -explain and the server's planner
// fields.
func (db *Database) Plan(query string, n int, opts ...QueryOption) (PlanDecision, error) {
	c := db.config(opts)
	x, err := parseExpand(query, &c)
	if err != nil {
		return PlanDecision{}, err
	}
	cs, _ := db.be.(backend.CountSource)
	d := plan.Decide(db.Schema(), cs, x, n)
	out := PlanDecision{
		Estimate:  d.Estimate,
		PlanSpace: d.PlanSpace,
		Probes:    d.Probes,
		InitialK:  d.InitialK,
		Delta:     d.Delta,
		Growth:    d.Growth,
	}
	if d.Strategy == plan.Direct {
		out.Strategy = Direct
		out.DirectShards = 1
	} else {
		out.Strategy = SchemaDriven
		out.SchemaShards = 1
	}
	return out, nil
}

// Search returns the best n results for an approXQL query, ranked by
// ascending transformation cost. n <= 0 returns all approximate results.
func (db *Database) Search(query string, n int, opts ...QueryOption) ([]Result, error) {
	return db.SearchContext(context.Background(), query, n, opts...)
}

// SearchContext is Search with cancellation: planning and secondary
// execution check the context between steps, so a cancelled or
// deadline-bounded context stops the evaluation with ctx.Err().
func (db *Database) SearchContext(ctx context.Context, query string, n int, opts ...QueryOption) ([]Result, error) {
	c := db.config(opts)
	x, err := parseExpand(query, &c)
	if err != nil {
		return nil, err
	}
	strategy := c.strategy
	if strategy == Auto {
		strategy = db.resolveAuto(&c, x, n)
	}
	switch strategy {
	case Direct:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ev := eval.New(db.be.Tree(), db.be)
		if c.parallel > 0 {
			ev.Parallelism = c.parallel
		} else {
			ev.Parallelism = runtime.GOMAXPROCS(0)
		}
		res, err := ev.BestN(x, n)
		if c.metrics != nil {
			st := ev.Stats()
			c.metrics.EvalArenaChunks += st.ArenaChunks
			c.metrics.EvalArenaEntries += st.ArenaEntries
			c.metrics.EvalScratchHits += st.ScratchHits
			c.metrics.EvalScratchMisses += st.ScratchMisses
			c.metrics.EvalParallelForks += st.ParallelForks
			c.metrics.ResultsEmitted += len(res)
			// Report the effective worker count (Primary clamps to
			// GOMAXPROCS), mirroring the schema-driven engine.
			if par := min(ev.Parallelism, runtime.GOMAXPROCS(0)); par > c.metrics.Parallelism {
				c.metrics.Parallelism = par
			}
		}
		ev.Release()
		return res, err
	case SchemaDriven:
		var results []Result
		err := db.engine(c, n).Run(ctx, x, func(it exec.Item) bool {
			results = append(results, Result{Root: it.Root, Cost: it.Cost})
			return true
		})
		if err != nil {
			return nil, err
		}
		// Results arrive in ascending cost order; sort ties by preorder
		// for deterministic output and truncate to n.
		sort.SliceStable(results, func(i, j int) bool {
			if results[i].Cost != results[j].Cost {
				return results[i].Cost < results[j].Cost
			}
			return results[i].Root < results[j].Root
		})
		if n > 0 && n < len(results) {
			results = results[:n]
		}
		return results, nil
	}
	return nil, fmt.Errorf("approxql: unknown strategy %d", strategy)
}

// Stream retrieves results incrementally in ascending cost order, calling
// fn for each; fn returns false to stop. This is the "further advantage of
// the schema-based approach" of the paper's conclusion: once the second-
// level queries are generated, results are sent to the user as soon as each
// second-level query completes.
func (db *Database) Stream(query string, fn func(Result) bool, opts ...QueryOption) error {
	return db.StreamContext(context.Background(), query, fn, opts...)
}

// StreamContext is Stream with cancellation. When fn stops the stream the
// return is nil; when the context fires first it is ctx.Err().
func (db *Database) StreamContext(ctx context.Context, query string, fn func(Result) bool, opts ...QueryOption) error {
	c := db.config(opts)
	if c.initialK <= 0 {
		c.initialK = 8
	}
	x, err := parseExpand(query, &c)
	if err != nil {
		return err
	}
	return db.engine(c, 0).Run(ctx, x, func(it exec.Item) bool {
		return fn(Result{Root: it.Root, Cost: it.Cost})
	})
}

// ExplainedResult is a result together with the second-level query that
// retrieved it: the transformed query whose exact embedding the result is.
type ExplainedResult struct {
	Result
	// Plan renders the retrieving second-level query, e.g.
	// "cd@4[title@5[#text@6=concerto]]".
	Plan string
}

// SearchExplained is Search restricted to the schema-driven strategy,
// additionally reporting for each result the transformed query that found
// it — the explanation of *why* a result matched and what it cost.
func (db *Database) SearchExplained(query string, n int, opts ...QueryOption) ([]ExplainedResult, error) {
	return db.SearchExplainedContext(context.Background(), query, n, opts...)
}

// SearchExplainedContext is SearchExplained with cancellation.
func (db *Database) SearchExplainedContext(ctx context.Context, query string, n int, opts ...QueryOption) ([]ExplainedResult, error) {
	c := db.config(opts)
	x, err := parseExpand(query, &c)
	if err != nil {
		return nil, err
	}
	var out []ExplainedResult
	err = db.engine(c, n).Run(ctx, x, func(it exec.Item) bool {
		out = append(out, ExplainedResult{
			Result: Result{Root: it.Root, Cost: it.Cost},
			Plan:   kbest.Render(it.Plan),
		})
		return n <= 0 || len(out) < n
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MatchStep reports the fate of one query selector in the cheapest
// embedding of a query at a particular result (see MatchDetails).
type MatchStep struct {
	// QueryLabel is the selector's original label.
	QueryLabel string
	// Kind distinguishes name selectors from text selectors.
	Kind Kind
	// Action is "matched", "renamed", or "deleted".
	Action string
	// MatchedLabel is the data-side label (differs from QueryLabel when
	// the selector was renamed; empty when deleted).
	MatchedLabel string
	// Node is the matched data node (undefined when deleted).
	Node NodeID
}

// MatchDetails explains one result: it reconstructs the cheapest valid
// embedding of the query at the given result root and reports, selector by
// selector, whether it matched directly, matched under a renaming, or was
// deleted — the information a UI needs for highlighting. The root must be a
// result of the same query and cost model (as returned by Search).
func (db *Database) MatchDetails(query string, root NodeID, opts ...QueryOption) ([]MatchStep, Cost, error) {
	c := db.config(opts)
	q, err := lang.Parse(query)
	if err != nil {
		return nil, 0, err
	}
	assigns, total, err := eval.Explain(db.be.Tree(), q, c.model, root)
	if err != nil {
		return nil, 0, err
	}
	out := make([]MatchStep, len(assigns))
	for i, a := range assigns {
		out[i] = MatchStep{
			QueryLabel:   a.Query.Label,
			Kind:         a.Query.Kind,
			Action:       a.Action.String(),
			MatchedLabel: a.Label,
			Node:         a.Node,
		}
		if a.Action == eval.Deleted {
			out[i].MatchedLabel = ""
		}
	}
	return out, total, nil
}

// SuggestOptions tune SuggestCostModel; the zero value uses the defaults of
// the derivation heuristics (5 renamings per label, costs in [1, 9]).
type SuggestOptions = costgen.Options

// SuggestCostModel derives a transformation cost model for the given query
// from the collection's structure: renaming candidates come from element
// names and terms used in similar contexts (measured on the schema), and
// delete costs reflect how much structure a name carries. This implements
// the paper's future-work item on domain-specific cost rules; treat the
// result as a starting point and inspect it with Explain.
func (db *Database) SuggestCostModel(query string, opt SuggestOptions) (*CostModel, error) {
	q, err := lang.Parse(query)
	if err != nil {
		return nil, err
	}
	a := costgen.NewAnalyzer(db.Schema(), opt)
	labels := make([]costgen.Label, 0, 8)
	for _, l := range q.Labels() {
		labels = append(labels, costgen.Label{Name: l.Name, Kind: l.Kind})
	}
	return a.ModelFor(labels), nil
}

// SecondLevelQuery describes one transformed query produced by the
// schema-driven planner, for Explain.
type SecondLevelQuery struct {
	// Rendered is a compact textual form, e.g. "cd@3[title@5[#text@6]]".
	Rendered string
	// Cost is the embedding cost every result of this query receives.
	Cost Cost
	// Results is the number of data subtrees the query retrieves.
	Results int
}

// Explain returns the best k second-level queries for an approXQL query —
// the transformed queries the schema-driven strategy would execute — with
// their costs and result counts. It is the introspection tool for cost-model
// tuning. Result counts come from a count-only execution path: no result
// list is materialized or retained.
func (db *Database) Explain(query string, k int, opts ...QueryOption) ([]SecondLevelQuery, error) {
	return db.ExplainContext(context.Background(), query, k, opts...)
}

// ExplainContext is Explain with cancellation.
func (db *Database) ExplainContext(ctx context.Context, query string, k int, opts ...QueryOption) ([]SecondLevelQuery, error) {
	c := db.config(opts)
	x, err := parseExpand(query, &c)
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		k = 10
	}
	plans, err := db.engine(c, 0).Explain(ctx, x, k)
	if err != nil {
		return nil, err
	}
	out := make([]SecondLevelQuery, len(plans))
	for i, p := range plans {
		out[i] = SecondLevelQuery{
			Rendered: kbest.Render(p.Entry),
			Cost:     p.Entry.Cost,
			Results:  p.Results,
		}
	}
	return out, nil
}
