package approxql

import (
	"fmt"

	"approxql/internal/cost"
	"approxql/internal/costgen"
	"approxql/internal/eval"
	"approxql/internal/kbest"
	"approxql/internal/lang"
)

// Strategy selects the best-n evaluation algorithm.
type Strategy int

const (
	// Auto picks SchemaDriven when a bounded number of results is
	// requested and Direct when all results are wanted — the paper's
	// crossover finding applied as a planner rule.
	Auto Strategy = iota
	// Direct computes all approximate results with algorithm primary
	// against the data indexes, sorts, and prunes (Section 6).
	Direct
	// SchemaDriven generates the best k second-level queries against the
	// schema and executes them incrementally (Section 7).
	SchemaDriven
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Direct:
		return "direct"
	case SchemaDriven:
		return "schema"
	default:
		return "auto"
	}
}

type queryConfig struct {
	model    *CostModel
	strategy Strategy
	initialK int
	delta    int
}

// QueryOption configures Search, Stream, and Explain.
type QueryOption func(*queryConfig)

// WithCostModel supplies the transformation costs for this query. Without
// it, only insertions are allowed (exact containment semantics with
// context-specificity ranking).
func WithCostModel(m *CostModel) QueryOption {
	return func(c *queryConfig) { c.model = m }
}

// WithStrategy forces an evaluation strategy.
func WithStrategy(s Strategy) QueryOption {
	return func(c *queryConfig) { c.strategy = s }
}

// WithInitialK overrides the schema-driven algorithm's initial guess for
// the number of second-level queries (Section 7.4: "a good initial guess of
// k is crucial").
func WithInitialK(k int) QueryOption {
	return func(c *queryConfig) { c.initialK = k }
}

// WithDelta overrides the increment applied to k when the first k
// second-level queries yield too few results.
func WithDelta(d int) QueryOption {
	return func(c *queryConfig) { c.delta = d }
}

func (db *Database) config(opts []QueryOption) queryConfig {
	c := queryConfig{model: cost.NewModel()}
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Parse checks an approXQL query without executing it and returns its
// canonical form.
func Parse(query string) (string, error) {
	q, err := lang.Parse(query)
	if err != nil {
		return "", err
	}
	return q.String(), nil
}

// Search returns the best n results for an approXQL query, ranked by
// ascending transformation cost. n <= 0 returns all approximate results.
func (db *Database) Search(query string, n int, opts ...QueryOption) ([]Result, error) {
	c := db.config(opts)
	q, err := lang.Parse(query)
	if err != nil {
		return nil, err
	}
	x := lang.Expand(q, c.model)
	strategy := c.strategy
	if strategy == Auto {
		if n > 0 {
			strategy = SchemaDriven
		} else {
			strategy = Direct
		}
	}
	switch strategy {
	case Direct:
		return eval.New(db.tree, db.ix).BestN(x, n)
	case SchemaDriven:
		res, _, err := kbest.BestN(db.Schema(), x, n, kbest.Options{
			InitialK: c.initialK,
			Delta:    c.delta,
		})
		return res, err
	}
	return nil, fmt.Errorf("approxql: unknown strategy %d", strategy)
}

// Stream retrieves results incrementally in ascending cost order, calling
// fn for each; fn returns false to stop. This is the "further advantage of
// the schema-based approach" of the paper's conclusion: once the second-
// level queries are generated, results are sent to the user as soon as each
// second-level query completes.
func (db *Database) Stream(query string, fn func(Result) bool, opts ...QueryOption) error {
	c := db.config(opts)
	q, err := lang.Parse(query)
	if err != nil {
		return err
	}
	x := lang.Expand(q, c.model)
	sch := db.Schema()

	k := c.initialK
	if k <= 0 {
		k = 8
	}
	delta := c.delta
	if delta <= 0 {
		delta = k
	}
	// Result roots are instances of classes carrying the root label or a
	// renaming of it; reaching that bound ends the stream (further
	// second-level queries can only repeat known roots).
	maxResults := 0
	for _, label := range append([]string{x.Root.Label}, renameTargets(x.Root)...) {
		for _, cls := range sch.StructClasses(label) {
			maxResults += len(sch.Instances(cls))
		}
	}

	seen := make(map[NodeID]bool)
	executed := make(map[string]bool)
	for {
		en := kbest.NewEngine(sch, k)
		lp, err := en.SecondLevel(x)
		if err != nil {
			return err
		}
		for _, e := range lp {
			sig := kbest.Signature(e)
			if executed[sig] {
				continue
			}
			executed[sig] = true
			roots, err := en.Secondary(e)
			if err != nil {
				return err
			}
			for _, u := range roots {
				if seen[u] {
					continue
				}
				seen[u] = true
				if !fn(Result{Root: u, Cost: e.Cost}) {
					return nil
				}
			}
		}
		if len(lp) < k || len(seen) >= maxResults || k >= 1<<20 {
			return nil
		}
		k += delta
		delta *= 2
	}
}

// ExplainedResult is a result together with the second-level query that
// retrieved it: the transformed query whose exact embedding the result is.
type ExplainedResult struct {
	Result
	// Plan renders the retrieving second-level query, e.g.
	// "cd@4[title@5[#text@6=concerto]]".
	Plan string
}

// SearchExplained is Search restricted to the schema-driven strategy,
// additionally reporting for each result the transformed query that found
// it — the explanation of *why* a result matched and what it cost.
func (db *Database) SearchExplained(query string, n int, opts ...QueryOption) ([]ExplainedResult, error) {
	c := db.config(opts)
	q, err := lang.Parse(query)
	if err != nil {
		return nil, err
	}
	x := lang.Expand(q, c.model)
	sch := db.Schema()

	k := c.initialK
	if k <= 0 {
		k = 8
		if n > k {
			k = n
		}
	}
	delta := c.delta
	if delta <= 0 {
		delta = k
	}
	// Result roots are bounded by the instances of root-label classes.
	maxResults := 0
	for _, label := range append([]string{x.Root.Label}, renameTargets(x.Root)...) {
		for _, cls := range sch.StructClasses(label) {
			maxResults += len(sch.Instances(cls))
		}
	}
	var out []ExplainedResult
	seen := make(map[NodeID]bool)
	executed := make(map[string]bool)
	for {
		en := kbest.NewEngine(sch, k)
		lp, err := en.SecondLevel(x)
		if err != nil {
			return nil, err
		}
		for _, e := range lp {
			sig := kbest.Signature(e)
			if executed[sig] {
				continue
			}
			executed[sig] = true
			roots, err := en.Secondary(e)
			if err != nil {
				return nil, err
			}
			for _, u := range roots {
				if seen[u] {
					continue
				}
				seen[u] = true
				out = append(out, ExplainedResult{
					Result: Result{Root: u, Cost: e.Cost},
					Plan:   kbest.Render(e),
				})
				if n > 0 && len(out) >= n {
					return out, nil
				}
			}
		}
		if len(lp) < k || len(seen) >= maxResults || k >= 1<<20 {
			return out, nil
		}
		k += delta
		delta *= 2
	}
}

// MatchStep reports the fate of one query selector in the cheapest
// embedding of a query at a particular result (see MatchDetails).
type MatchStep struct {
	// QueryLabel is the selector's original label.
	QueryLabel string
	// Kind distinguishes name selectors from text selectors.
	Kind Kind
	// Action is "matched", "renamed", or "deleted".
	Action string
	// MatchedLabel is the data-side label (differs from QueryLabel when
	// the selector was renamed; empty when deleted).
	MatchedLabel string
	// Node is the matched data node (undefined when deleted).
	Node NodeID
}

// MatchDetails explains one result: it reconstructs the cheapest valid
// embedding of the query at the given result root and reports, selector by
// selector, whether it matched directly, matched under a renaming, or was
// deleted — the information a UI needs for highlighting. The root must be a
// result of the same query and cost model (as returned by Search).
func (db *Database) MatchDetails(query string, root NodeID, opts ...QueryOption) ([]MatchStep, Cost, error) {
	c := db.config(opts)
	q, err := lang.Parse(query)
	if err != nil {
		return nil, 0, err
	}
	assigns, total, err := eval.Explain(db.tree, q, c.model, root)
	if err != nil {
		return nil, 0, err
	}
	out := make([]MatchStep, len(assigns))
	for i, a := range assigns {
		out[i] = MatchStep{
			QueryLabel:   a.Query.Label,
			Kind:         a.Query.Kind,
			Action:       a.Action.String(),
			MatchedLabel: a.Label,
			Node:         a.Node,
		}
		if a.Action == eval.Deleted {
			out[i].MatchedLabel = ""
		}
	}
	return out, total, nil
}

// SuggestOptions tune SuggestCostModel; the zero value uses the defaults of
// the derivation heuristics (5 renamings per label, costs in [1, 9]).
type SuggestOptions = costgen.Options

// SuggestCostModel derives a transformation cost model for the given query
// from the collection's structure: renaming candidates come from element
// names and terms used in similar contexts (measured on the schema), and
// delete costs reflect how much structure a name carries. This implements
// the paper's future-work item on domain-specific cost rules; treat the
// result as a starting point and inspect it with Explain.
func (db *Database) SuggestCostModel(query string, opt SuggestOptions) (*CostModel, error) {
	q, err := lang.Parse(query)
	if err != nil {
		return nil, err
	}
	a := costgen.NewAnalyzer(db.Schema(), opt)
	labels := make([]costgen.Label, 0, 8)
	for _, l := range q.Labels() {
		labels = append(labels, costgen.Label{Name: l.Name, Kind: l.Kind})
	}
	return a.ModelFor(labels), nil
}

func renameTargets(root *lang.XNode) []string {
	out := make([]string, 0, len(root.Renamings))
	for _, r := range root.Renamings {
		out = append(out, r.To)
	}
	return out
}

// SecondLevelQuery describes one transformed query produced by the
// schema-driven planner, for Explain.
type SecondLevelQuery struct {
	// Rendered is a compact textual form, e.g. "cd@3[title@5[#text@6]]".
	Rendered string
	// Cost is the embedding cost every result of this query receives.
	Cost Cost
	// Results is the number of data subtrees the query retrieves.
	Results int
}

// Explain returns the best k second-level queries for an approXQL query —
// the transformed queries the schema-driven strategy would execute — with
// their costs and result counts. It is the introspection tool for cost-model
// tuning.
func (db *Database) Explain(query string, k int, opts ...QueryOption) ([]SecondLevelQuery, error) {
	c := db.config(opts)
	q, err := lang.Parse(query)
	if err != nil {
		return nil, err
	}
	x := lang.Expand(q, c.model)
	if k <= 0 {
		k = 10
	}
	en := kbest.NewEngine(db.Schema(), k)
	lp, err := en.SecondLevel(x)
	if err != nil {
		return nil, err
	}
	out := make([]SecondLevelQuery, len(lp))
	for i, e := range lp {
		roots, err := en.Secondary(e)
		if err != nil {
			return nil, err
		}
		out[i] = SecondLevelQuery{
			Rendered: kbest.Render(e),
			Cost:     e.Cost,
			Results:  len(roots),
		}
	}
	return out, nil
}
