package approxql

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"approxql/internal/lang"

	"approxql/internal/backend"
	"approxql/internal/cost"
	"approxql/internal/eval"
	"approxql/internal/index"
	"approxql/internal/schema"
	"approxql/internal/storage"
	"approxql/internal/xmltree"
)

// Re-exported cost-model vocabulary. A CostModel assigns costs to the basic
// query transformations; labels without explicit entries use the paper's
// defaults (insert 1, delete and rename forbidden).
type (
	// CostModel assigns costs to insertions, deletions, and renamings.
	CostModel = cost.Model
	// Cost is a non-negative transformation cost.
	Cost = cost.Cost
	// Kind distinguishes element/attribute names (Struct) from terms (Text).
	Kind = cost.Kind
)

// Inf is the infinite cost: a forbidden transformation.
const Inf = cost.Inf

// Struct and Text are the two label kinds.
const (
	Struct = cost.Struct
	Text   = cost.Text
)

// NewCostModel returns a model with the default convention: every insertion
// costs 1, deletions and renamings are forbidden until configured.
func NewCostModel() *CostModel { return cost.NewModel() }

// ParseCostModel reads a cost model from its textual format; see the
// internal/cost package documentation for the line syntax:
//
//	default insert <cost>
//	insert <kind> <label> <cost>
//	delete <kind> <label> <cost>
//	rename <kind> <from> <to> <cost>
func ParseCostModel(r io.Reader) (*CostModel, error) { return cost.Parse(r) }

// PaperCostModel returns the example cost table of the paper's Section 6,
// used throughout its worked examples (CD catalogs).
func PaperCostModel() *CostModel { return cost.PaperExample() }

// NodeID identifies a node of the indexed collection; result roots are
// NodeIDs usable with Database.Render.
type NodeID = xmltree.NodeID

// Result is one ranked answer: the root of a matching subtree and the cost
// of the cheapest transformation sequence that embeds the query there.
// Lower is better; 0 is an exact match.
type Result = eval.Result

// Builder ingests XML documents into a new Database.
type Builder struct {
	b   *xmltree.Builder
	err error
}

// NewBuilder returns a Builder. The optional model fixes the node-insertion
// costs baked into the index encoding (nil uses insert cost 1 everywhere,
// the paper's experimental convention); deletion and renaming costs are
// supplied per query instead.
func NewBuilder(model *CostModel) *Builder {
	return &Builder{b: xmltree.NewBuilder(model)}
}

// SetTokenizer replaces the word splitter applied to element text and
// attribute values (the default lowercases and splits on non-alphanumeric
// runes). Call it before adding documents; query text selectors are always
// normalized with the default tokenizer, so a custom tokenizer should
// produce compatible word forms.
func (bl *Builder) SetTokenizer(tok func(string) []string) {
	bl.b.SetTokenizer(tok)
}

// AddXML parses one XML document and adds it to the collection.
func (bl *Builder) AddXML(r io.Reader) error {
	if bl.err != nil {
		return bl.err
	}
	if err := bl.b.AddDocument(r); err != nil {
		bl.err = err
		return err
	}
	return nil
}

// AddXMLString is AddXML over a string.
func (bl *Builder) AddXMLString(doc string) error {
	return bl.AddXML(strings.NewReader(doc))
}

// AddXMLFile parses the XML file at path and adds it to the collection.
func (bl *Builder) AddXMLFile(path string) error {
	if bl.err != nil {
		return bl.err
	}
	f, err := os.Open(path)
	if err != nil {
		bl.err = err
		return err
	}
	defer f.Close()
	return bl.AddXML(f)
}

// Database finishes ingestion: it freezes the data tree and builds the
// indexes. The Builder must not be used afterwards.
func (bl *Builder) Database() (*Database, error) {
	if bl.err != nil {
		return nil, bl.err
	}
	tree, err := bl.b.Finish()
	if err != nil {
		return nil, err
	}
	return newDatabase(tree), nil
}

// Database is an indexed, immutable XML collection supporting approximate
// tree-pattern search. It is safe for concurrent use.
//
// A Database reads its postings through a storage backend: in-memory
// indexes for databases built from XML (Builder) or loaded from a
// collection file (OpenDatabaseFile), B+tree files for databases opened
// over persisted indexes (OpenStored, OpenBundle). Every query path —
// direct evaluation, the schema-driven k-growing loop, Explain — runs
// unmodified over either backend.
type Database struct {
	be backend.Backend
}

func newDatabase(tree *xmltree.Tree) *Database {
	return &Database{be: backend.NewMemory(tree)}
}

// Schema returns the database's structural summary, building it on first
// use. The schema is shared and must be treated as read-only.
func (db *Database) Schema() *schema.Schema { return db.be.Schema() }

// Tree exposes the underlying data tree for advanced integrations (the
// benchmark harness, the CLIs).
func (db *Database) Tree() *xmltree.Tree { return db.be.Tree() }

// Index exposes the in-memory label indexes, or nil when the database
// reads its postings from stored indexes (OpenStored, OpenBundle).
func (db *Database) Index() *index.Memory {
	if m, ok := db.be.(*backend.Memory); ok {
		return m.Index()
	}
	return nil
}

// Close releases the database's resources (open index files of a stored
// backend). It is a no-op for in-memory databases.
func (db *Database) Close() error { return db.be.Close() }

// Render pretty-prints the subtree rooted at a result root.
func (db *Database) Render(root NodeID) string {
	return db.be.Tree().RenderString(root)
}

// Label returns the label of a node (element name or word).
func (db *Database) Label(u NodeID) string { return db.be.Tree().Label(u) }

// Path returns the label-type path of a node, e.g. "<root>/catalog/cd".
func (db *Database) Path(u NodeID) string { return db.be.Tree().LabelTypePath(u) }

// Len returns the number of nodes in the collection, including the
// synthetic super-root.
func (db *Database) Len() int { return db.be.Tree().Len() }

// Stats summarizes a collection and its schema.
type Stats struct {
	// Nodes counts all data-tree nodes including the super-root.
	Nodes int
	// Elements counts struct nodes (elements and attributes).
	Elements int
	// Words counts text nodes.
	Words int
	// Documents counts top-level documents.
	Documents int
	// MaxDepth is the longest root-to-leaf path in edges.
	MaxDepth int
	// Selectivity is s of the paper's complexity analysis: the largest
	// number of nodes sharing one label.
	Selectivity int
	// Recursivity is l: the largest number of repetitions of one label
	// along a single path.
	Recursivity int
	// SchemaClasses counts the nodes of the structural summary.
	SchemaClasses int
	// LargestClass is s_d: the most instances of any one class.
	LargestClass int
}

// Stats computes collection statistics (walks the tree once and builds the
// schema if not yet built).
func (db *Database) Stats() Stats {
	ts := db.be.Tree().ComputeStats()
	ss := db.Schema().ComputeStats()
	return Stats{
		Nodes:         ts.Nodes,
		Elements:      ts.StructNodes,
		Words:         ts.TextNodes,
		Documents:     ts.Documents,
		MaxDepth:      ts.MaxDepth,
		Selectivity:   ts.Selectivity,
		Recursivity:   ts.Recursivity,
		SchemaClasses: ss.Classes,
		LargestClass:  ss.MaxInstances,
	}
}

// WriteTo serializes the collection (dictionaries and structure). Indexes
// and schema are rebuilt on load. It implements io.WriterTo.
func (db *Database) WriteTo(w io.Writer) (int64, error) {
	return db.be.Tree().WriteTo(w)
}

// ReadDatabase loads a collection written by WriteTo, re-encoding the
// insertion costs under model (nil for defaults).
func ReadDatabase(r io.Reader, model *CostModel) (*Database, error) {
	tree, err := xmltree.ReadTree(r, model)
	if err != nil {
		return nil, err
	}
	return newDatabase(tree), nil
}

// OpenDatabaseFile loads a collection file written by WriteTo into an
// in-memory database, rebuilding indexes and schema. When path is a bundle
// manifest (written by axqlindex or WriteBundle) it opens the stored
// backend instead — the persisted B+tree indexes are queried directly and
// nothing is rebuilt beyond the schema structure.
//
// OpenDatabaseFile is the single-database special case of Open, which
// additionally accepts multi-shard corpus bundles; new code should prefer
// Open.
func OpenDatabaseFile(path string, model *CostModel) (*Database, error) {
	if backend.IsBundle(path) {
		return OpenBundle(path, model)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	db, err := ReadDatabase(f, model)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return db, nil
}

// OpenDatabaseFileOptions is OpenDatabaseFile honoring the OpenOptions that
// apply to a single-database artifact: Model, CacheEntries, and MMap.
// Shards is rejected (it requires a multi-shard corpus bundle — use Open).
// MMap and CacheEntries only affect bundle (stored) artifacts; a plain
// collection file loads into memory and ignores both.
func OpenDatabaseFileOptions(path string, opts *OpenOptions) (*Database, error) {
	var o OpenOptions
	if opts != nil {
		o = *opts
	}
	if len(o.Shards) > 0 {
		return nil, fmt.Errorf("approxql: Shards requires a multi-shard corpus bundle; use Open")
	}
	if !backend.IsBundle(path) {
		return OpenDatabaseFile(path, o.Model)
	}
	ce := o.CacheEntries
	if ce == 0 {
		ce = backend.DefaultCacheEntries
	}
	return openBundle(path, o.Model, backend.StoredOptions{CacheEntries: ce, MMap: o.MMap})
}

// OpenStored opens a collection over its persisted indexes: collection is
// the file written by WriteTo (or axqlindex -out), postings the B+tree
// holding I_struct/I_text, secondary the B+tree holding I_sec (both written
// by PersistIndexes or axqlindex -postings/-secondary). The index files are
// opened read-only and postings are fetched on demand through one shared
// LRU, so queries run without re-ingesting XML or rebuilding postings. The
// optional model fixes the node-insertion costs, as in NewBuilder; it must
// match the model used at indexing time for the stored postings to agree
// with the tree encoding. Close the returned database to release the index
// files.
func OpenStored(collection, postings, secondary string, model *CostModel) (*Database, error) {
	return openStored(collection, postings, secondary, model,
		backend.StoredOptions{CacheEntries: backend.DefaultCacheEntries})
}

func openStored(collection, postings, secondary string, model *CostModel, sopts backend.StoredOptions) (*Database, error) {
	f, err := os.Open(collection)
	if err != nil {
		return nil, err
	}
	tree, err := xmltree.ReadTree(f, model)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", collection, err)
	}
	be, err := backend.OpenStoredOptions(tree, postings, secondary, sopts)
	if err != nil {
		return nil, err
	}
	return &Database{be: be}, nil
}

// OpenBundle opens the stored database described by a single-shard bundle
// manifest, the one-path form of OpenStored. Bundles are written by
// WriteBundle and by axqlindex when it persists both index files. It is a
// special case of Open, which also accepts multi-shard corpus bundles.
func OpenBundle(path string, model *CostModel) (*Database, error) {
	return openBundle(path, model,
		backend.StoredOptions{CacheEntries: backend.DefaultCacheEntries})
}

func openBundle(path string, model *CostModel, sopts backend.StoredOptions) (*Database, error) {
	b, err := backend.ReadBundle(path)
	if err != nil {
		return nil, err
	}
	db, err := openStored(b.Collection, b.Postings, b.Secondary, model, sopts)
	if err != nil {
		return nil, err
	}
	if s, ok := db.be.(*backend.Stored); ok {
		s.SetManifestVersion(b.Version)
	}
	return db, nil
}

// WriteBundle writes a bundle manifest at path referencing a collection
// file and its two persisted index files, relativized to the manifest's
// directory so the files can move as a unit.
func WriteBundle(path, collection, postings, secondary string) error {
	return backend.WriteBundle(path, backend.Bundle{
		Collection: collection, Postings: postings, Secondary: secondary,
	})
}

// PersistIndexes writes the database's postings (I_struct/I_text) and
// path-dependent secondary index (I_sec) into two B+tree files, the inputs
// of OpenStored. An empty path skips that store. The database must be
// in-memory (built from XML or loaded from a collection file).
func (db *Database) PersistIndexes(postings, secondary string) error {
	m, ok := db.be.(*backend.Memory)
	if !ok {
		return fmt.Errorf("approxql: database already reads from stored indexes")
	}
	if err := persistInto(postings, func(s *storage.DB) error {
		return index.Save(m.Index(), s)
	}); err != nil {
		return err
	}
	return persistInto(secondary, func(s *storage.DB) error {
		return db.Schema().SaveSec(s)
	})
}

func persistInto(path string, save func(*storage.DB) error) error {
	if path == "" {
		return nil
	}
	s, err := storage.Open(path, nil)
	if err != nil {
		return err
	}
	if err := save(s); err != nil {
		s.Close()
		return err
	}
	return s.Close()
}

// MMapped reports whether the database serves its stored indexes from
// read-only memory mappings (OpenOptions.MMap honored); always false for
// in-memory databases and for platforms without mmap support.
func (db *Database) MMapped() bool {
	s, ok := db.be.(*backend.Stored)
	return ok && s.MMapped()
}

// Fingerprint parses a query and returns a compact, stable identifier of
// its canonical parse tree: syntactically different spellings of the same
// query — extra whitespace, redundant parentheses, multi-word text selectors
// versus explicit conjunctions — share one fingerprint. It is the cache key
// primitive for result caches layered over a Database (see internal/server):
// two queries with equal fingerprints evaluated with equal n, strategy, and
// cost model produce identical rankings.
func Fingerprint(query string) (string, error) {
	q, err := lang.Parse(query)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(q.String()))
	return hex.EncodeToString(sum[:16]), nil
}

// ErrNotStored reports that a cache-administration call targeted a
// database or corpus whose postings are served from memory: there is no
// posting cache to size, so the requested capacity would silently not
// apply.
var ErrNotStored = errors.New("approxql: postings are in memory, not stored; no cache to size")

// SetStoredCacheSize resizes the shared posting cache of a stored database
// to n entries (n <= 0 disables caching). It returns ErrNotStored for
// in-memory databases, whose postings bypass the cache layer entirely.
// See docs/BACKENDS.md for sizing guidance.
func (db *Database) SetStoredCacheSize(n int) error {
	s, ok := db.be.(*backend.Stored)
	if !ok {
		return ErrNotStored
	}
	s.SetCacheCapacity(n)
	return nil
}
