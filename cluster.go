package approxql

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"approxql/internal/corpus"
)

// This file is the public surface of distributed shard serving: a Corpus
// opened on a subset of a bundle's shards (OpenOptions.Shards) streams its
// part of a query through ServeShard, and a Cluster gathers such nodes —
// reached over HTTP or served in-process — into one exact global ranking.
// The wire protocol and soundness argument live in docs/CLUSTER.md.

// ShardHit is one hit of a shard-node stream or a cluster gather: the
// ranked Hit plus the presentation fields resolved by the document's
// owning node (a gatherer holds no document data of its own).
type ShardHit struct {
	Hit
	// DocName is the document's external name; Path the label-type path
	// of the matching root; Subtree its rendering, when requested.
	DocName string
	Path    string
	Subtree string
}

// ServeShard streams this corpus's hits for a query in ascending (cost,
// doc, root) order, calling fn for each until fn returns false. It is the
// shard-node primitive of a cluster: the per-shard strategy resolves like
// Search (Auto by default, WithStrategy forces one), and bound — when
// non-nil — is an external cost cutoff that must be monotone
// non-increasing, returning Inf while unknown; hits whose cost strictly
// exceeds it are withheld, equal-cost hits always delivered (the
// gatherer's tie-exactness depends on that). n bounds each direct shard's
// per-shard evaluation (n <= 0: all results); render attaches
// pretty-printed subtrees.
func (c *Corpus) ServeShard(ctx context.Context, query string, n int, bound func() Cost, render bool, fn func(ShardHit) bool, opts ...QueryOption) error {
	qc := corpusOptions(opts)
	x, err := parseExpand(query, &qc)
	if err != nil {
		return err
	}
	strategy := qc.strategy
	if strategy != Auto && strategy != Direct && strategy != SchemaDriven {
		return fmt.Errorf("approxql: unknown strategy %d", strategy)
	}
	return c.c.ServeStream(ctx, x, n, bound, c.corpusConfig(qc, strategy), func(h corpus.Hit) bool {
		sh := ShardHit{Hit: Hit{Doc: h.Doc, Result: Result{Root: h.Root, Cost: h.Cost}}}
		d := c.Doc(h.Doc)
		sh.DocName = d.Name()
		sh.Path = d.Path(h.Root)
		if render {
			sh.Subtree = d.RenderNode(h.Root)
		}
		return fn(sh)
	})
}

// ClusterOptions tunes NewCluster. The zero value selects the defaults
// noted per field.
type ClusterOptions struct {
	// ConnectTimeout bounds dialing plus response headers per node
	// request (default 2s); ReadTimeout bounds per-line silence on a hit
	// stream (default 30s).
	ConnectTimeout time.Duration
	ReadTimeout    time.Duration
	// Retries bounds re-issues of a node query that failed before
	// delivering any hit (0 = default 2, negative = never retry);
	// RetryBackoff is the initial delay, doubling per attempt (default
	// 100ms). Attempts that already delivered hits are never retried —
	// the gather heap would double-count.
	Retries      int
	RetryBackoff time.Duration
	// FailClosed fails a whole query when any node fails; the default
	// fails open, returning the surviving nodes' merged hits flagged
	// Partial with per-node error detail.
	FailClosed bool
}

// NodeError is the failure a fail-closed cluster search returns, naming
// the node that broke the query. Unwrap yields the underlying error.
type NodeError = corpus.NodeError

// Cluster is a gatherer over shard nodes: axqlserve processes in
// shard-node mode (reached by base URL) and optionally this process's own
// corpus. Every node must serve disjoint shard subsets of one corpus
// bundle under one cost model — the shared global DocID space is what
// makes the merged (cost, doc, root) ranking exact and bit-identical to a
// single-process search. Safe for concurrent use.
type Cluster struct {
	cl *corpus.Cluster
	// nonce makes this gatherer's qids globally unique: shard nodes key
	// their in-flight bound registries by qid alone, so two gatherers
	// sharing nodes must never collide or one's /shard/bound updates
	// would tighten the other's cutoff and silently drop valid hits.
	nonce string
	qid   atomic.Uint64
}

// NewCluster assembles a gatherer over the shard nodes at nodeURLs
// (scheme://host:port each). local, when non-nil, adds this process's own
// corpus — a subset of the same bundle — as one more node.
func NewCluster(nodeURLs []string, local *Corpus, opts *ClusterOptions) (*Cluster, error) {
	var o ClusterOptions
	if opts != nil {
		o = *opts
	}
	var nodes []corpus.Node
	if local != nil {
		nodes = append(nodes, corpus.NewLocalShards(local.c, corpus.Config{}))
	}
	rcfg := corpus.RemoteShardConfig{
		ConnectTimeout: o.ConnectTimeout,
		ReadTimeout:    o.ReadTimeout,
		Retries:        o.Retries,
		Backoff:        o.RetryBackoff,
	}
	for _, u := range nodeURLs {
		u = strings.TrimSpace(u)
		if u == "" {
			continue
		}
		nodes = append(nodes, corpus.NewRemoteShard(u, rcfg))
	}
	if len(nodes) == 0 {
		return nil, errors.New("approxql: cluster needs at least one node")
	}
	var nb [8]byte
	if _, err := rand.Read(nb[:]); err != nil {
		return nil, fmt.Errorf("approxql: cluster qid nonce: %w", err)
	}
	return &Cluster{
		cl:    corpus.NewCluster(nodes, corpus.ClusterConfig{FailClosed: o.FailClosed}),
		nonce: hex.EncodeToString(nb[:]),
	}, nil
}

// NodeStatus details one node's part of a cluster search.
type NodeStatus struct {
	// Node is the node's base URL ("local" for the in-process node); Err
	// its failure, when it had one.
	Node string
	Err  string
	// LatencyMS spans the node's whole stream, first byte to done line.
	LatencyMS float64
	// Hits counts hits the node delivered into the merge; Stopped
	// reports the gatherer cut it short via the cost bound; Retries and
	// BoundPushes count wire-level re-issues and mid-stream bound
	// updates.
	Hits        int
	Stopped     bool
	Retries     int
	BoundPushes int
}

// ClusterResult is one cluster search's outcome.
type ClusterResult struct {
	// Hits is the merged global ranking, ascending (cost, doc, root).
	Hits []ShardHit
	// Partial reports a degraded fail-open gather: at least one node
	// failed and its documents are missing from the ranking.
	Partial bool
	// Nodes has one entry per cluster node, failures included.
	Nodes []NodeStatus
}

// Search gathers the best n hits for a query across the cluster; see
// SearchContext.
func (cl *Cluster) Search(query string, n int, opts ...QueryOption) (ClusterResult, error) {
	return cl.SearchContext(context.Background(), query, n, false, opts...)
}

// SearchContext fans the query over every node and merges the cost-ordered
// streams into the global best n (n <= 0: all hits), pushing the current
// n-th cost to in-flight nodes so remote shards stop early exactly like
// in-process ones. render asks nodes to attach rendered subtrees. It
// accepts the same options as Corpus.SearchContext; WithMetrics aggregates
// the planner and bound counters reported by the nodes.
func (cl *Cluster) SearchContext(ctx context.Context, query string, n int, render bool, opts ...QueryOption) (ClusterResult, error) {
	qc := corpusOptions(opts)
	x, err := parseExpand(query, &qc)
	if err != nil {
		return ClusterResult{}, err
	}
	strategy := qc.strategy
	if strategy != Auto && strategy != Direct && strategy != SchemaDriven {
		return ClusterResult{}, fmt.Errorf("approxql: unknown strategy %d", strategy)
	}
	cq := corpus.ClusterQuery{
		ID:       fmt.Sprintf("%s.q%d", cl.nonce, cl.qid.Add(1)),
		Query:    query,
		X:        x,
		N:        n,
		Strategy: strategy.String(),
		Render:   render,
	}
	res, err := cl.cl.Search(ctx, cq, qc.metrics)
	out := ClusterResult{Partial: res.Partial}
	for _, h := range res.Hits {
		out.Hits = append(out.Hits, ShardHit{
			Hit:     Hit{Doc: h.Doc, Result: Result{Root: h.Root, Cost: h.Cost}},
			DocName: h.DocName,
			Path:    h.Path,
			Subtree: h.Subtree,
		})
	}
	for _, st := range res.Nodes {
		out.Nodes = append(out.Nodes, NodeStatus{
			Node:        st.Node,
			Err:         st.Err,
			LatencyMS:   st.LatencyMS,
			Hits:        st.Hits,
			Stopped:     st.Stopped,
			Retries:     st.Retries,
			BoundPushes: st.BoundPushes,
		})
	}
	return out, err
}

// ClusterNodeHealth is one node's health-probe outcome.
type ClusterNodeHealth struct {
	Node string
	// Err is the probe failure for an unreachable node; the stats fields
	// are zero then.
	Err            string
	Docs           int
	Shards         int
	TreeNodes      int
	BundleVersion  int
	StorageCounted bool
}

// Health probes every node's /shard/stats concurrently with the given
// per-probe timeout (0 = 2s), one entry per node.
func (cl *Cluster) Health(ctx context.Context, timeout time.Duration) []ClusterNodeHealth {
	probes := cl.cl.Health(ctx, timeout)
	out := make([]ClusterNodeHealth, len(probes))
	for i, p := range probes {
		out[i] = ClusterNodeHealth{
			Node:           p.Node,
			Err:            p.Err,
			Docs:           p.Docs,
			Shards:         p.Shards,
			TreeNodes:      p.Nodes,
			BundleVersion:  p.BundleVersion,
			StorageCounted: p.StorageCounted,
		}
	}
	return out
}
